(* Fault-tolerant serving: the fault spec grammar, chaos-mode
   determinism, retry/failover/straggler behavior, deadlines, load
   shedding and degraded batching. *)

open Cortex
module M = Models.Common

let gpu = Backend.gpu
let small_spec = Models.Tree_lstm.spec ~vocab:50 ~hidden:8 ()

let sst_trees seed n =
  let rng = Rng.create seed in
  List.init n (fun _ -> Gen.sst_tree rng ~vocab:50 ())

(* ---------- the fault grammar ---------- *)

let test_parse_roundtrip () =
  let src = "failstop@1:5000;transient@*:0.05,0,1e6;straggler@0:3,2000,8000" in
  match Fault.parse src with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok spec ->
    Alcotest.(check int) "three faults" 3 (List.length spec);
    (match spec with
     | [ Fault.Fail_stop f; Fault.Transient t; Fault.Straggler s ] ->
       Alcotest.(check int) "failstop device" 1 f.device;
       Alcotest.(check (float 0.0)) "failstop at" 5000.0 f.at_us;
       Alcotest.(check int) "transient wildcard" (-1) t.device;
       Alcotest.(check (float 0.0)) "transient prob" 0.05 t.prob;
       Alcotest.(check (float 0.0)) "transient until" 1e6 t.until_us;
       Alcotest.(check (float 0.0)) "straggler factor" 3.0 s.factor
     | _ -> Alcotest.fail "wrong constructors");
    (* to_string must re-parse to the same spec *)
    (match Fault.parse (Fault.to_string spec) with
     | Ok spec' -> Alcotest.(check bool) "round-trips" true (spec = spec')
     | Error e -> Alcotest.failf "rendered spec did not re-parse: %s" e)

let test_parse_rejects () =
  List.iter
    (fun bad ->
      match Fault.parse bad with
      | Ok _ -> Alcotest.failf "accepted %S" bad
      | Error _ -> ())
    [
      "failstop@1:-5" (* negative time *);
      "transient@0:1.5,0,10" (* prob > 1 *);
      "transient@0:0,0,10" (* prob = 0 is not a fault *);
      "straggler@0:0.5,0,10" (* factor < 1 *);
      "straggler@0:2,10,5" (* from > until *);
      "meteor@0:1" (* unknown kind *);
      "failstop@x:5" (* bad device *);
      "failstop@1" (* missing args *);
    ]

let test_parse_duplicate_targets () =
  (* Two clauses of the same kind on the same target are a spec bug,
     not a sweep; the error names both clause positions. *)
  let expect_dup src =
    match Fault.parse src with
    | Ok _ -> Alcotest.failf "accepted duplicate spec %S" src
    | Error e ->
      Alcotest.(check bool)
        (Printf.sprintf "%S error mentions the duplicate: %s" src e)
        true
        (let has needle =
           let nl = String.length needle and el = String.length e in
           let rec scan i = i + nl <= el && (String.sub e i nl = needle || scan (i + 1)) in
           scan 0
         in
         has "duplicate" && has "first at clause 1")
  in
  expect_dup "failstop@0:5;failstop@0:10";
  expect_dup "transient@*:0.5,0,10;transient@*:0.2,0,20";
  expect_dup "straggler@2:2,0,10;failstop@2:5;straggler@2:4,20,30";
  (* Same kind on different devices is a legitimate sweep... *)
  (match Fault.parse "failstop@0:5;failstop@1:10" with
   | Ok spec -> Alcotest.(check int) "distinct devices accepted" 2 (List.length spec)
   | Error e -> Alcotest.failf "distinct devices rejected: %s" e);
  (* ...and so are different kinds on the same device. *)
  match Fault.parse "failstop@0:5;straggler@0:2,0,10" with
  | Ok spec -> Alcotest.(check int) "distinct kinds accepted" 2 (List.length spec)
  | Error e -> Alcotest.failf "distinct kinds rejected: %s" e

let test_parse_error_positions () =
  (* Every error must name the offending clause's 1-based position and
     its text, so a long spec is debuggable from the message alone. *)
  let expect src fragment =
    match Fault.parse src with
    | Ok _ -> Alcotest.failf "accepted %S" src
    | Error e ->
      let has needle =
        let nl = String.length needle and el = String.length e in
        let rec scan i = i + nl <= el && (String.sub e i nl = needle || scan (i + 1)) in
        scan 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "%S error %S mentions %S" src e fragment)
        true (has fragment)
  in
  expect "failstop@0:5;meteor@1:2" "clause 2";
  expect "failstop@0:5;meteor@1:2" "unknown kind";
  expect "failstop@0:5;transient@1:0.5,0,10;straggler@x:2,0,10" "clause 3";
  expect "transient@0:0.5,abc,10" "argument 2";
  expect "straggler@0:2,0,1,9" "wrong arity";
  expect "failstop" "missing @device";
  expect "failstop@0" "missing :args";
  expect "failstop@0:" "argument 1"

(* QCheck: any well-formed spec survives [to_string] then [parse]
   structurally intact.  Floats are generated on dyadic grids so the
   %g rendering is exact. *)
let fault_roundtrip_test =
  let open QCheck in
  let gen =
    let open Gen in
    let device = oneofl [ -1; 0; 1; 2; 3 ] in
    let time = map float_of_int (int_bound 10000) in
    let until_of from =
      oneof [ return infinity; map (fun d -> from +. float_of_int d) (int_bound 10000) ]
    in
    let fault =
      int_bound 2 >>= fun kind ->
      device >>= fun device ->
      match kind with
      | 0 -> map (fun at_us -> Fault.Fail_stop { device; at_us }) time
      | 1 ->
        map (fun k -> float_of_int k /. 16.0) (int_range 1 16) >>= fun prob ->
        time >>= fun from_us ->
        map
          (fun until_us -> Fault.Transient { device; prob; from_us; until_us })
          (until_of from_us)
      | _ ->
        map (fun k -> 1.0 +. (float_of_int k /. 4.0)) (int_bound 16) >>= fun factor ->
        time >>= fun from_us ->
        map
          (fun until_us -> Fault.Straggler { device; factor; from_us; until_us })
          (until_of from_us)
    in
    (* Deduplicate (kind, device) targets: the parser rejects them by
       design, and the generator must stay inside the valid grammar. *)
    let dedup spec =
      let seen = Hashtbl.create 8 in
      List.filter
        (fun f ->
          let key =
            match f with
            | Fault.Fail_stop { device; _ } -> ("failstop", device)
            | Fault.Transient { device; _ } -> ("transient", device)
            | Fault.Straggler { device; _ } -> ("straggler", device)
          in
          if Hashtbl.mem seen key then false
          else (
            Hashtbl.add seen key ();
            true))
        spec
    in
    map dedup (list_size (int_range 1 6) fault)
  in
  let print spec = Fault.to_string spec in
  QCheck.Test.make ~name:"to_string/parse round-trip" ~count:500
    (QCheck.make ~print gen)
    (fun spec ->
      match Fault.parse (Fault.to_string spec) with
      | Ok spec' -> spec' = spec
      | Error e -> QCheck.Test.fail_reportf "rendered spec did not re-parse: %s" e)

let test_create_validates_devices () =
  let spec = [ Fault.Fail_stop { device = 3; at_us = 0.0 } ] in
  (try
     ignore (Fault.create ~seed:1 ~devices:2 spec);
     Alcotest.fail "device 3 accepted on a 2-device fleet"
   with Invalid_argument _ -> ());
  ignore (Fault.create ~seed:1 ~devices:4 spec)

(* ---------- chaos-mode determinism ---------- *)

let chaos_trace =
  Trace.poisson ~deadline_us:4000.0 (Rng.create 17) ~rate_rps:20000.0
    ~duration_ms:5.0
    ~gen:(fun rng -> Gen.sst_tree rng ~vocab:50 ())

let chaos_engine ?(devices = 2) ?queue_cap ?degrade_watermark ~faults ~seed () =
  let policy = { Engine.max_batch = 8; max_wait_us = 300.0; bucketing = Engine.Fifo } in
  Engine.of_spec
    ~config:
      (Engine.Config.make ~policy ~dispatch:Dispatch.Least_loaded
         ~devices:(List.init devices (fun _ -> gpu))
         ?queue_cap ?degrade_watermark ~faults ~seed ())
    small_spec ~backend:gpu

(* Everything the CLI prints, rendered canonically. *)
let render (s : Engine.summary) =
  let slo = s.Engine.slo in
  let a = s.Engine.aggregate in
  Printf.sprintf "%d/%d/%d/%d/%d/%d/%d/%d|%.6f/%.6f/%.6f/%.6f|%s"
    slo.Engine.slo_completed slo.Engine.slo_lost slo.Engine.slo_shed
    slo.Engine.slo_rejected slo.Engine.slo_transients slo.Engine.slo_retries
    slo.Engine.slo_failovers slo.Engine.slo_deadline_misses a.Engine.throughput_rps
    a.Engine.p99_us a.Engine.makespan_us slo.Engine.slo_goodput_rps
    (String.concat ";"
       (List.map
          (fun (r : Engine.request_report) ->
            Printf.sprintf "%d:%.6f:%b" r.Engine.rr_id r.Engine.rr_total_us
              r.Engine.rr_on_time)
          s.Engine.requests))

let test_chaos_determinism () =
  let faults =
    [
      Fault.Transient { device = -1; prob = 0.2; from_us = 0.0; until_us = infinity };
      Fault.Straggler { device = 0; factor = 2.0; from_us = 0.0; until_us = 2000.0 };
    ]
  in
  let run () = render (Engine.run_trace (chaos_engine ~faults ~seed:42 ()) chaos_trace) in
  Alcotest.(check string) "same seed, same summary" (run ()) (run ())

(* ---------- transient faults: retries keep results bitwise identical ---------- *)

let test_transient_bitwise_identical () =
  let params = small_spec.M.init_params (Rng.create 7) in
  let run faults =
    let policy = { Engine.max_batch = 4; max_wait_us = 300.0; bucketing = Engine.Fifo } in
    let engine =
      Engine.of_spec
        ~config:
          (Engine.Config.make ~policy ~dispatch:Dispatch.Least_loaded
             ~devices:[ gpu; gpu ] ~faults ~seed:3 ~params ())
        small_spec ~backend:gpu
    in
    List.iteri
      (fun i s ->
        ignore (Engine.submit_exn engine ~arrival_us:(50.0 *. float_of_int i) s))
      (sst_trees 29 12);
    Engine.drain engine
  in
  let clean = run [] in
  let faulty =
    run [ Fault.Transient { device = -1; prob = 0.5; from_us = 0.0; until_us = infinity } ]
  in
  Alcotest.(check bool) "faults actually fired" true
    (faulty.Engine.slo.Engine.slo_retries > 0);
  Alcotest.(check int) "nothing lost" 0 faulty.Engine.slo.Engine.slo_lost;
  Alcotest.(check int) "all completed" 12 faulty.Engine.slo.Engine.slo_completed;
  Alcotest.(check int) "results for every request" 12
    (List.length faulty.Engine.results);
  (* The property the retry design pins: a retried window re-dispatches
     the same linearization, so completed requests' numbers cannot
     depend on the fault history. *)
  List.iter2
    (fun (id_c, t_c) (id_f, t_f) ->
      Alcotest.(check int) "same request ids" id_c id_f;
      Alcotest.(check bool)
        (Printf.sprintf "request %d bitwise identical to fault-free" id_c)
        true
        (Tensor.max_abs_diff t_c t_f = 0.0))
    clean.Engine.results faulty.Engine.results

let test_retry_budget_exhausts () =
  (* prob = 1: every execution aborts, so every window burns its full
     retry budget and is lost. *)
  let faults =
    [ Fault.Transient { device = -1; prob = 1.0; from_us = 0.0; until_us = infinity } ]
  in
  let engine = chaos_engine ~devices:1 ~faults ~seed:5 () in
  List.iter (fun s -> ignore (Engine.submit_exn engine s)) (sst_trees 31 4);
  let s = Engine.drain engine in
  Alcotest.(check int) "nothing completes" 0 s.Engine.slo.Engine.slo_completed;
  Alcotest.(check int) "everything lost" 4 s.Engine.slo.Engine.slo_lost;
  (* 4 requests, max_batch 8: one window, 1 + max_retries executions. *)
  Alcotest.(check int) "budget spent"
    (1 + Fault.default_retry.Fault.max_retries)
    s.Engine.slo.Engine.slo_transients;
  Alcotest.(check int) "retries counted"
    Fault.default_retry.Fault.max_retries
    s.Engine.slo.Engine.slo_retries

(* ---------- fail-stop and failover ---------- *)

let test_failstop_failover_no_loss () =
  (* Probe run: find a window mid-flight on some device, then kill that
     device at the window's midpoint and require a failover with zero
     lost requests.  Chaos mode makes the probe's timings exact. *)
  let probe = Engine.run_trace (chaos_engine ~devices:4 ~faults:[] ~seed:42 ()) chaos_trace in
  let w = List.hd probe.Engine.windows in
  let completion =
    w.Engine.wr_dispatch_us
    +. w.Engine.wr_report.Runtime.latency.Backend.total_us
  in
  let midpoint = (w.Engine.wr_dispatch_us +. completion) /. 2.0 in
  let faults = [ Fault.Fail_stop { device = w.Engine.wr_device; at_us = midpoint } ] in
  let s = Engine.run_trace (chaos_engine ~devices:4 ~faults ~seed:42 ()) chaos_trace in
  Alcotest.(check bool) "failover happened" true
    (s.Engine.slo.Engine.slo_failovers >= 1);
  Alcotest.(check int) "zero lost" 0 s.Engine.slo.Engine.slo_lost;
  Alcotest.(check int) "every request completed"
    probe.Engine.slo.Engine.slo_completed s.Engine.slo.Engine.slo_completed;
  let dead = List.nth s.Engine.device_reports w.Engine.wr_device in
  Alcotest.(check bool) "device marked failed" true dead.Engine.dr_failed;
  (* No window may run on the dead device after its death. *)
  List.iter
    (fun (win : Engine.window_report) ->
      if win.Engine.wr_device = w.Engine.wr_device then
        Alcotest.(check bool) "dispatched before the death" true
          (win.Engine.wr_dispatch_us < midpoint))
    s.Engine.windows

let test_all_devices_dead () =
  let faults = [ Fault.Fail_stop { device = 0; at_us = 0.0 } ] in
  let engine = chaos_engine ~devices:1 ~faults ~seed:1 () in
  List.iter (fun s -> ignore (Engine.submit_exn engine s)) (sst_trees 37 3);
  let s = Engine.drain engine in
  Alcotest.(check int) "nothing completes" 0 s.Engine.slo.Engine.slo_completed;
  Alcotest.(check int) "everything lost" 3 s.Engine.slo.Engine.slo_lost

(* ---------- stragglers ---------- *)

let test_straggler_scales_latency () =
  let run faults =
    let policy = { Engine.max_batch = 8; max_wait_us = 300.0; bucketing = Engine.Fifo } in
    let engine =
      Engine.of_spec
        ~config:(Engine.Config.make ~policy ~devices:[ gpu ] ~faults ~seed:2 ())
        small_spec ~backend:gpu
    in
    List.iter (fun s -> ignore (Engine.submit_exn engine s)) (sst_trees 41 4);
    Engine.drain engine
  in
  let clean = run [] in
  let slow =
    run [ Fault.Straggler { device = 0; factor = 5.0; from_us = 0.0; until_us = infinity } ]
  in
  let device_us (s : Engine.summary) =
    (List.hd s.Engine.windows).Engine.wr_report.Runtime.latency.Backend.total_us
  in
  Alcotest.(check (float 1e-6)) "window priced 5x"
    (5.0 *. device_us clean) (device_us slow);
  Alcotest.(check bool) "p99 grows" true
    (slow.Engine.aggregate.Engine.p99_us > clean.Engine.aggregate.Engine.p99_us)

(* ---------- deadlines ---------- *)

let test_deadline_boundary () =
  (* Probe the deterministic completion time, then pin the <= boundary:
     a deadline exactly at completion is on time, a hair earlier is a
     miss. *)
  let run deadline_us =
    let engine = chaos_engine ~devices:1 ~faults:[] ~seed:1 () in
    ignore (Engine.submit_exn engine ?deadline_us (List.hd (sst_trees 43 1)));
    Engine.drain engine
  in
  let probe = run None in
  let completion = (List.hd probe.Engine.requests).Engine.rr_total_us in
  Alcotest.(check int) "no deadline, no miss" 0
    probe.Engine.slo.Engine.slo_deadline_misses;
  let exact = run (Some completion) in
  Alcotest.(check int) "deadline at completion is on time" 0
    exact.Engine.slo.Engine.slo_deadline_misses;
  Alcotest.(check bool) "on-time flag set" true
    (List.hd exact.Engine.requests).Engine.rr_on_time;
  let tight = run (Some (completion -. 0.5)) in
  Alcotest.(check int) "a hair earlier misses" 1
    tight.Engine.slo.Engine.slo_deadline_misses;
  Alcotest.(check bool) "on-time flag cleared" false
    (List.hd tight.Engine.requests).Engine.rr_on_time;
  (* Missing the deadline still completes the request — goodput drops,
     throughput does not. *)
  Alcotest.(check int) "still completed" 1 tight.Engine.slo.Engine.slo_completed;
  Alcotest.(check (float 1e-9)) "zero goodput" 0.0
    tight.Engine.slo.Engine.slo_goodput_rps

let test_deadline_shorter_than_linearization () =
  (* Outside chaos mode the measured linearization wall clock is > 0, so
     an impossible deadline (arrival + epsilon) must always miss. *)
  let engine = Engine.of_spec small_spec ~backend:gpu in
  ignore
    (Engine.submit_exn engine ~arrival_us:100.0 ~deadline_us:100.001
       (List.hd (sst_trees 47 1)));
  let s = Engine.drain engine in
  Alcotest.(check int) "completed" 1 s.Engine.slo.Engine.slo_completed;
  Alcotest.(check int) "missed" 1 s.Engine.slo.Engine.slo_deadline_misses

(* ---------- load shedding and the queue cap ---------- *)

let test_queue_cap_zero () =
  let engine = chaos_engine ~queue_cap:0 ~faults:[] ~seed:1 () in
  List.iter
    (fun s ->
      match Engine.submit engine s with
      | Error (Engine.Shed { cap }) -> Alcotest.(check int) "cap reported" 0 cap
      | Ok _ -> Alcotest.fail "cap-0 queue accepted a request"
      | Error e -> Alcotest.failf "wrong error: %s" (Engine.error_to_string e))
    (sst_trees 53 3);
  let s = Engine.drain engine in
  Alcotest.(check int) "all shed" 3 s.Engine.slo.Engine.slo_shed;
  Alcotest.(check int) "none completed" 0 s.Engine.slo.Engine.slo_completed

let test_queue_cap_one_drains_and_reopens () =
  let engine = chaos_engine ~queue_cap:1 ~faults:[] ~seed:1 () in
  let trees = sst_trees 59 3 in
  (match Engine.submit engine (List.nth trees 0) with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "first submit failed: %s" (Engine.error_to_string e));
  (match Engine.submit engine (List.nth trees 1) with
   | Error (Engine.Shed _) -> ()
   | _ -> Alcotest.fail "second submit should shed");
  let s = Engine.drain engine in
  Alcotest.(check int) "one completed" 1 s.Engine.slo.Engine.slo_completed;
  Alcotest.(check int) "one shed" 1 s.Engine.slo.Engine.slo_shed;
  (* The drain emptied the queue: the cap admits again. *)
  (match Engine.submit engine (List.nth trees 2) with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "post-drain submit failed: %s" (Engine.error_to_string e));
  let s2 = Engine.drain engine in
  Alcotest.(check int) "shed counter was reset" 0 s2.Engine.slo.Engine.slo_shed

let test_shed_vs_reject_accounting () =
  (* The cap is the front door: an invalid request bounces as [Rejected]
     only while there is queue room; at the cap everything sheds,
     invalid or not. *)
  let engine = chaos_engine ~queue_cap:2 ~faults:[] ~seed:1 () in
  let good = sst_trees 61 3 in
  let bad =
    (* a DAG submitted to a tree model *)
    let b = Node.builder () in
    let shared = Node.make b ~payload:1 [] in
    let l = Node.make b ~payload:2 [ shared ] in
    let r = Node.make b ~payload:3 [ shared ] in
    let root = Node.make b ~payload:4 [ l; r ] in
    Structure.create ~kind:Structure.Dag ~max_children:2 [ root ]
  in
  (match Engine.submit engine (List.nth good 0) with
   | Ok _ -> ()
   | Error _ -> Alcotest.fail "good request bounced");
  (match Engine.submit engine bad with
   | Error (Engine.Kind_mismatch _) -> ()
   | _ -> Alcotest.fail "invalid request below the cap must reject");
  (match Engine.submit engine (List.nth good 1) with
   | Ok _ -> ()
   | Error _ -> Alcotest.fail "good request bounced");
  (* Queue is now at the cap (the rejected request never queued). *)
  (match Engine.submit engine bad with
   | Error (Engine.Shed _) -> ()
   | _ -> Alcotest.fail "at the cap, even an invalid request sheds");
  let s = Engine.drain engine in
  Alcotest.(check int) "completed" 2 s.Engine.slo.Engine.slo_completed;
  Alcotest.(check int) "one rejected" 1 s.Engine.slo.Engine.slo_rejected;
  Alcotest.(check int) "one shed" 1 s.Engine.slo.Engine.slo_shed

(* QCheck: the SLO ledger is a partition.  Under any combination of a
   fail-stop, a transient rate and a queue cap, every submission
   attempt lands in exactly one of completed / lost / shed / rejected —
   no request is double-counted and none evaporates. *)
let slo_partition_test =
  let bad_dag () =
    (* a DAG submitted to a tree model: rejected at the front door *)
    let b = Node.builder () in
    let shared = Node.make b ~payload:1 [] in
    let l = Node.make b ~payload:2 [ shared ] in
    let r = Node.make b ~payload:3 [ shared ] in
    let root = Node.make b ~payload:4 [ l; r ] in
    Structure.create ~kind:Structure.Dag ~max_children:2 [ root ]
  in
  QCheck.Test.make ~name:"completed+lost+shed+rejected = submissions" ~count:25
    QCheck.(
      quad (int_range 0 99) (int_range 1 12) (int_range 1 10) (int_range 0 5000))
    (fun (seed, cap, prob10, fail_at) ->
      let faults =
        [
          Fault.Fail_stop { device = 0; at_us = float_of_int fail_at };
          Fault.Transient
            {
              device = -1;
              prob = float_of_int prob10 /. 10.0;
              from_us = 0.0;
              until_us = infinity;
            };
        ]
      in
      let engine = chaos_engine ~devices:2 ~queue_cap:cap ~faults ~seed () in
      let attempts = ref 0 in
      let submit structure arrival_us =
        incr attempts;
        ignore (Engine.submit engine ~arrival_us structure)
      in
      List.iteri
        (fun i s ->
          let at = 120.0 *. float_of_int i in
          submit s at;
          (* an invalid request rides along every 4th slot: it must be
             accounted (rejected below the cap, shed at it), never
             dropped silently *)
          if i mod 4 = 3 then submit (bad_dag ()) at)
        (sst_trees (seed + 100) 16);
      let s = Engine.drain engine in
      let slo = s.Engine.slo in
      let total =
        slo.Engine.slo_completed + slo.Engine.slo_lost + slo.Engine.slo_shed
        + slo.Engine.slo_rejected
      in
      if total <> !attempts then
        QCheck.Test.fail_reportf
          "partition broken: %d+%d+%d+%d = %d, but %d submissions (seed %d cap %d p %.1f fail@%d)"
          slo.Engine.slo_completed slo.Engine.slo_lost slo.Engine.slo_shed
          slo.Engine.slo_rejected total !attempts seed cap
          (float_of_int prob10 /. 10.0)
          fail_at
      else true)

(* ---------- degraded batching ---------- *)

let test_degrade_watermark () =
  let run watermark =
    let engine = chaos_engine ?degrade_watermark:watermark ~faults:[] ~seed:1 () in
    List.iter (fun s -> ignore (Engine.submit_exn engine s)) (sst_trees 67 10);
    Engine.drain engine
  in
  let normal = run None in
  Alcotest.(check bool) "no watermark, not degraded" false
    normal.Engine.slo.Engine.slo_degraded;
  let degraded = run (Some 4) in
  Alcotest.(check bool) "past the watermark, degraded" true
    degraded.Engine.slo.Engine.slo_degraded;
  (* max_batch 8 halves to 4 *)
  List.iter
    (fun (w : Engine.window_report) ->
      Alcotest.(check bool) "windows halved" true (w.Engine.wr_size <= 4))
    degraded.Engine.windows;
  Alcotest.(check int) "still serves everything" 10
    degraded.Engine.slo.Engine.slo_completed;
  let under = run (Some 100) in
  Alcotest.(check bool) "under the watermark, normal policy" false
    under.Engine.slo.Engine.slo_degraded

(* ---------- goodput under overload with a cap ---------- *)

let test_goodput_under_cap () =
  (* Heavy overload on one device: a queue cap sheds the excess instead
     of queuing it past the deadline; goodput (on-time completions per
     second) stays within 10% of the uncapped fault-free run while the
     p99 stays bounded by the uncapped run's (whose queue grows without
     bound, blowing both its tail latency and its deadline misses). *)
  let trace =
    Trace.poisson ~deadline_us:8000.0 (Rng.create 71) ~rate_rps:100000.0
      ~duration_ms:5.0
      ~gen:(fun rng -> Gen.sst_tree rng ~vocab:50 ())
  in
  let run queue_cap =
    Engine.run_trace (chaos_engine ~devices:1 ?queue_cap ~faults:[] ~seed:9 ()) trace
  in
  let free = run None in
  let capped = run (Some 64) in
  Alcotest.(check bool) "the cap actually shed load" true
    (capped.Engine.slo.Engine.slo_shed > 0);
  let g_free = free.Engine.slo.Engine.slo_goodput_rps in
  let g_cap = capped.Engine.slo.Engine.slo_goodput_rps in
  Alcotest.(check bool)
    (Printf.sprintf "goodput within 10%% (%.0f vs %.0f)" g_cap g_free)
    true
    (g_cap >= 0.9 *. g_free);
  Alcotest.(check bool)
    (Printf.sprintf "p99 bounded (%.0f vs %.0f)" capped.Engine.aggregate.Engine.p99_us
       free.Engine.aggregate.Engine.p99_us)
    true
    (capped.Engine.aggregate.Engine.p99_us
     <= free.Engine.aggregate.Engine.p99_us)

(* ---------- trace hygiene ---------- *)

let test_unsorted_trace_rejected () =
  let trees = sst_trees 73 2 in
  let trace =
    [
      { Trace.at_us = 100.0; deadline_us = None; structure = List.nth trees 0 };
      { Trace.at_us = 50.0; deadline_us = None; structure = List.nth trees 1 };
    ]
  in
  let engine = chaos_engine ~faults:[] ~seed:1 () in
  try
    ignore (Engine.run_trace engine trace);
    Alcotest.fail "unsorted trace accepted"
  with Engine.Error (Engine.Unsorted_trace u) ->
    Alcotest.(check int) "offending index" 1 u.index;
    Alcotest.(check (float 0.0)) "offending time" 50.0 u.at_us;
    Alcotest.(check (float 0.0)) "predecessor" 100.0 u.prev_us

let () =
  Alcotest.run "fault"
    [
      ( "spec",
        [
          Alcotest.test_case "parse-roundtrip" `Quick test_parse_roundtrip;
          Alcotest.test_case "parse-rejects" `Quick test_parse_rejects;
          Alcotest.test_case "parse-duplicates" `Quick test_parse_duplicate_targets;
          Alcotest.test_case "parse-error-positions" `Quick test_parse_error_positions;
          QCheck_alcotest.to_alcotest fault_roundtrip_test;
          Alcotest.test_case "create-validates" `Quick test_create_validates_devices;
        ] );
      ( "determinism",
        [ Alcotest.test_case "chaos-two-runs" `Quick test_chaos_determinism ] );
      ( "transients",
        [
          Alcotest.test_case "bitwise-identical" `Quick test_transient_bitwise_identical;
          Alcotest.test_case "budget-exhausts" `Quick test_retry_budget_exhausts;
        ] );
      ( "failstop",
        [
          Alcotest.test_case "failover-no-loss" `Quick test_failstop_failover_no_loss;
          Alcotest.test_case "all-dead" `Quick test_all_devices_dead;
        ] );
      ( "stragglers",
        [ Alcotest.test_case "scales-latency" `Quick test_straggler_scales_latency ] );
      ( "deadlines",
        [
          Alcotest.test_case "boundary" `Quick test_deadline_boundary;
          Alcotest.test_case "impossible" `Quick test_deadline_shorter_than_linearization;
        ] );
      ( "shedding",
        [
          Alcotest.test_case "cap-zero" `Quick test_queue_cap_zero;
          Alcotest.test_case "cap-one-reopens" `Quick test_queue_cap_one_drains_and_reopens;
          Alcotest.test_case "shed-vs-reject" `Quick test_shed_vs_reject_accounting;
          QCheck_alcotest.to_alcotest slo_partition_test;
        ] );
      ( "degrade",
        [ Alcotest.test_case "watermark" `Quick test_degrade_watermark ] );
      ( "overload",
        [ Alcotest.test_case "goodput-under-cap" `Quick test_goodput_under_cap ] );
      ( "trace",
        [ Alcotest.test_case "unsorted" `Quick test_unsorted_trace_rejected ] );
    ]
