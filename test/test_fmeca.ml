(* The FMECA campaign: grid coverage, same-seed determinism, score
   structure, trace validity of ranked modes and the JSON artifact
   round-trip the CI baseline diff depends on. *)

open Cortex

(* A two-family slice keeps each test to a handful of engine drains;
   the full 22-mode grid is exercised by the bench harness and CI. *)
let slice = [ "queue"; "transient" ]

let run_slice = lazy (Fmeca.run ~families:slice ~seed:11 ())

(* ---------- the grid ---------- *)

let test_grid_coverage () =
  let ms = Fmeca.modes () in
  Alcotest.(check bool) "at least 20 failure modes" true (List.length ms >= 20);
  let fams = Fmeca.families () in
  Alcotest.(check bool) "at least 5 component families" true (List.length fams >= 5);
  (* every family the modes claim is in the published list, and
     every published family has at least one mode *)
  List.iter
    (fun (m : Fmeca.mode) ->
      Alcotest.(check bool)
        (Printf.sprintf "family %s of %s is published" m.Fmeca.fm_family m.Fmeca.fm_id)
        true
        (List.mem m.Fmeca.fm_family fams))
    ms;
  List.iter
    (fun fam ->
      Alcotest.(check bool)
        (Printf.sprintf "family %s has a mode" fam)
        true
        (List.exists (fun (m : Fmeca.mode) -> m.Fmeca.fm_family = fam) ms))
    fams;
  (* mode ids are unique: they key the ranking diff *)
  let ids = List.map (fun (m : Fmeca.mode) -> m.Fmeca.fm_id) ms in
  Alcotest.(check int) "unique ids" (List.length ids)
    (List.length (List.sort_uniq compare ids));
  (* every non-empty grammar on the grid is valid *)
  List.iter
    (fun (m : Fmeca.mode) ->
      if m.Fmeca.fm_grammar <> "" then
        match Fault.parse m.Fmeca.fm_grammar with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "%s grammar invalid: %s" m.Fmeca.fm_id e)
    ms;
  (* declared rates are probabilities *)
  List.iter
    (fun (m : Fmeca.mode) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s rate in (0,1]" m.Fmeca.fm_id)
        true
        (m.Fmeca.fm_rate > 0.0 && m.Fmeca.fm_rate <= 1.0))
    ms

let test_family_filter () =
  let ms = Fmeca.modes ~families:slice () in
  Alcotest.(check bool) "filter keeps something" true (List.length ms > 0);
  List.iter
    (fun (m : Fmeca.mode) ->
      Alcotest.(check bool) "only sliced families" true
        (List.mem m.Fmeca.fm_family slice))
    ms;
  Alcotest.(check int) "unknown family matches nothing" 0
    (List.length (Fmeca.modes ~families:[ "meteor" ] ()))

(* ---------- determinism: the property CI diffs ---------- *)

let test_same_seed_same_table () =
  let a = Fmeca.run ~families:slice ~seed:11 () in
  let b = Fmeca.run ~families:slice ~seed:11 () in
  Alcotest.(check string) "byte-identical tables" (Fmeca.table a) (Fmeca.table b);
  Alcotest.(check string) "byte-identical json" (Fmeca.json_lines a)
    (Fmeca.json_lines b)

(* ---------- score structure ---------- *)

let test_score_structure () =
  let res = Lazy.force run_slice in
  let rows = res.Fmeca.res_rows in
  Alcotest.(check int) "one score per sliced mode"
    (List.length (Fmeca.modes ~families:slice ()))
    (List.length rows);
  List.iter
    (fun (sc : Fmeca.score) ->
      let id = sc.Fmeca.sc_mode.Fmeca.fm_id in
      let in_scale what v =
        Alcotest.(check bool)
          (Printf.sprintf "%s %s in 1..10 (got %d)" id what v)
          true (v >= 1 && v <= 10)
      in
      in_scale "severity" sc.Fmeca.sc_severity;
      in_scale "occurrence" sc.Fmeca.sc_occurrence;
      in_scale "detectability" sc.Fmeca.sc_detectability;
      Alcotest.(check int)
        (Printf.sprintf "%s rpn = s*o*d" id)
        (sc.Fmeca.sc_severity * sc.Fmeca.sc_occurrence * sc.Fmeca.sc_detectability)
        sc.Fmeca.sc_rpn;
      (* damage time and detection must agree: a mode that damaged
         nothing is No_damage, and vice versa *)
      match (sc.Fmeca.sc_damage_us, sc.Fmeca.sc_detection) with
      | None, Scan.No_damage | Some _, (Scan.Undetected | Scan.Lead _ | Scan.Lagged _)
        -> ()
      | None, d ->
        Alcotest.failf "%s: no damage but detection %s" id (Scan.detection_to_string d)
      | Some t, Scan.No_damage ->
        Alcotest.failf "%s: damage at %.1fus but detection none" id t)
    rows;
  (* ranked: RPN non-increasing *)
  let rec check_sorted = function
    | (a : Fmeca.score) :: (b : Fmeca.score) :: rest ->
      Alcotest.(check bool)
        (Printf.sprintf "rpn %d >= %d" a.Fmeca.sc_rpn b.Fmeca.sc_rpn)
        true
        (a.Fmeca.sc_rpn >= b.Fmeca.sc_rpn);
      check_sorted (b :: rest)
    | _ -> ()
  in
  check_sorted rows;
  (* the slice must separate: a hard queue cap under overload outranks
     a 2% transient rate that retries absorb *)
  let rank id =
    let rec go i = function
      | [] -> Alcotest.failf "mode %s missing from ranking" id
      | (sc : Fmeca.score) :: rest ->
        if sc.Fmeca.sc_mode.Fmeca.fm_id = id then i else go (i + 1) rest
    in
    go 1 rows
  in
  Alcotest.(check bool) "queue-cap-4 outranks transient-0.02" true
    (rank "queue-cap-4" < rank "transient-0.02")

(* ---------- ranked-mode traces validate ---------- *)

let test_top_mode_trace_valid () =
  let res = Lazy.force run_slice in
  let top = List.hd res.Fmeca.res_rows in
  let summary, events = Fmeca.run_mode ~seed:11 top.Fmeca.sc_mode in
  Alcotest.(check bool) "trace non-empty" true (List.length events > 0);
  (match Obs_validate.check events with
   | Ok () -> ()
   | Error e ->
     Alcotest.failf "top mode %s trace invalid: %s" top.Fmeca.sc_mode.Fmeca.fm_id
       (Obs_validate.error_to_string e));
  (* the re-run reproduces the campaign's damage time *)
  Alcotest.(check bool) "same damage as the campaign run" true
    (summary.Engine.slo.Engine.slo_first_damage_us = top.Fmeca.sc_damage_us);
  match Fmeca.run_mode ~seed:11 { top.Fmeca.sc_mode with Fmeca.fm_id = "meteor" } with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "off-grid mode accepted"

(* ---------- the JSON artifact round-trip ---------- *)

let test_json_roundtrip () =
  let res = Lazy.force run_slice in
  let doc = Fmeca.json_lines res in
  match Fmeca.load_ranking doc with
  | Error e -> Alcotest.failf "load_ranking failed: %s" e
  | Ok ranking ->
    Alcotest.(check int) "every row loads" (List.length res.Fmeca.res_rows)
      (List.length ranking);
    List.iteri
      (fun i (sc : Fmeca.score) ->
        let id = sc.Fmeca.sc_mode.Fmeca.fm_id in
        match List.assoc_opt id ranking with
        | Some r -> Alcotest.(check int) (id ^ " rank") (i + 1) r
        | None -> Alcotest.failf "mode %s missing after round-trip" id)
      res.Fmeca.res_rows;
    Alcotest.(check (list string)) "self-diff is empty" []
      (Fmeca.diff_ranking ~baseline:ranking res);
    (* perturb the baseline: the diff must call out every move *)
    let perturbed =
      match ranking with
      | (a, ra) :: (b, rb) :: rest -> (a, rb) :: (b, ra) :: rest
      | _ -> Alcotest.fail "ranking too small to perturb"
    in
    Alcotest.(check bool) "a rank swap is detected" true
      (List.length (Fmeca.diff_ranking ~baseline:perturbed res) >= 2);
    Alcotest.(check bool) "a dropped mode is detected" true
      (List.exists
         (fun line ->
           let has needle s =
             let nl = String.length needle and sl = String.length s in
             let rec scan i = i + nl <= sl && (String.sub s i nl = needle || scan (i + 1)) in
             scan 0
           in
           has "new at rank" line)
         (Fmeca.diff_ranking ~baseline:(List.tl ranking) res))

let test_load_ranking_rejects_garbage () =
  (match Fmeca.load_ranking "" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "empty document accepted");
  match Fmeca.load_ranking "[\n]\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty array accepted"

let () =
  Alcotest.run "fmeca"
    [
      ( "grid",
        [
          Alcotest.test_case "coverage" `Quick test_grid_coverage;
          Alcotest.test_case "family-filter" `Quick test_family_filter;
        ] );
      ( "determinism",
        [ Alcotest.test_case "same-seed-same-table" `Quick test_same_seed_same_table ]
      );
      ( "scores",
        [ Alcotest.test_case "structure" `Quick test_score_structure ] );
      ( "traces",
        [ Alcotest.test_case "top-mode-validates" `Quick test_top_mode_trace_valid ] );
      ( "artifact",
        [
          Alcotest.test_case "json-roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "rejects-garbage" `Quick test_load_ranking_rejects_garbage;
        ] );
    ]
