(* Tests for the backend latency model, the workload analyzer, the
   framework simulators and the roofline module: structural properties
   that must hold regardless of calibration constants. *)

open Cortex
module M = Models.Common

let spec = Models.Catalog.get "TreeLSTM" Models.Catalog.Small
let structure = spec.M.dataset (Rng.create 2) ~batch:10
let lin = Linearizer.run structure

let cost_of options =
  let compiled = Runtime.compile ~options:(Runtime.options_for ~base:options spec) spec.M.program in
  let bound = Lower.bind compiled lin in
  Cost.analyze ~uf:bound.Lower.uf_resolver
    ~num_internal_batches:bound.Lower.num_batch_launches compiled.Lower.prog

let test_persistence_saves_param_traffic () =
  let cost = cost_of Lower.default in
  let on = Backend.simulate Backend.gpu ~persist:true ~lock_free:false cost in
  let off = Backend.simulate Backend.gpu ~persist:false ~lock_free:false cost in
  Alcotest.(check bool) "less param traffic" true
    (on.Backend.param_traffic_bytes < off.Backend.param_traffic_bytes);
  Alcotest.(check bool) "not slower" true (on.Backend.total_us <= off.Backend.total_us)

let test_lock_free_not_slower () =
  let cost = cost_of Lower.default in
  let lf = Backend.simulate Backend.gpu ~persist:true ~lock_free:true cost in
  let lb = Backend.simulate Backend.gpu ~persist:true ~lock_free:false cost in
  Alcotest.(check bool) "lock-free barrier cheaper" true
    (lf.Backend.barrier_us < lb.Backend.barrier_us);
  Alcotest.(check int) "same barrier count" lf.Backend.barriers lb.Backend.barriers

let test_fusion_reduces_launches () =
  let fused = cost_of Lower.default in
  let unfused = cost_of { Lower.default with Lower.fuse = false } in
  Alcotest.(check bool) "fused has fewer launches" true
    (Cost.total_launches fused < Cost.total_launches unfused);
  Alcotest.(check bool) "fused fits in 2 launches" true (Cost.total_launches fused <= 2);
  Alcotest.(check bool) "fused moves less off-chip data" true
    (Cost.global_traffic fused < Cost.global_traffic unfused)

let test_specialization_cuts_flops () =
  let spec_on = cost_of Lower.default in
  let spec_off = cost_of { Lower.default with Lower.specialize = false } in
  (* SST trees are ~half leaves; folding their child-sum matvecs away
     should remove a large share of the FLOPs. *)
  let ratio = Cost.total_flops spec_on /. Cost.total_flops spec_off in
  Alcotest.(check bool) (Printf.sprintf "flop ratio %.2f < 0.85" ratio) true (ratio < 0.85)

let test_persisted_bytes_threshold () =
  let cost = cost_of Lower.default in
  let p = Backend.persisted_bytes Backend.gpu cost in
  Alcotest.(check bool) "some weights persist" true (p > 0.0);
  (* The embedding table (20 MB) must be excluded by the per-tensor cap. *)
  Alcotest.(check bool) "embedding not persisted" true (p < 1.0e7)

let test_backends_ordering () =
  let cost = cost_of Lower.default in
  let t be = (Backend.simulate be ~persist:true ~lock_free:false cost).Backend.total_us in
  Alcotest.(check bool) "GPU < Intel < ARM" true
    (t Backend.gpu < t Backend.intel && t Backend.intel < t Backend.arm)

(* ---------- workload ---------- *)

let test_workload_treelstm () =
  let h = 16 in
  let s = Models.Tree_lstm.spec ~vocab:30 ~hidden:h () in
  let ops = Workload.internal_ops s.M.program ~avg_children:2.0 in
  Alcotest.(check int) "4 precompute + 7 recursive ops" 11 (List.length ops);
  let gate = List.find (fun (w : Workload.opw) -> w.Workload.w_name = "i") ops in
  (* One gate is one matvec (2 H^2 multiply-add) plus bias and sigmoid. *)
  let flops_expected = float_of_int (2 * h * h) in
  Alcotest.(check bool) "gate flops ~ 2H^2" true
    (gate.Workload.w_flops >= flops_expected
     && gate.Workload.w_flops < flops_expected *. 2.2);
  Alcotest.(check bool) "gate is a matvec" true gate.Workload.w_matvec;
  Alcotest.(check int) "gate vendor kernels" 3 gate.Workload.w_vendor_kernels;
  let hsum = List.find (fun (w : Workload.opw) -> w.Workload.w_name = "hsum") ops in
  Alcotest.(check bool) "hsum is elementwise" false hsum.Workload.w_matvec;
  (* Gather-style embedding reads must not be charged more than the
     table + weight footprint the op touches. *)
  let xi = List.find (fun (w : Workload.opw) -> w.Workload.w_name = "xi") ops in
  Alcotest.(check bool) "xi param bytes bounded by footprint" true
    (xi.Workload.w_param_bytes <= float_of_int (4 * (((30 + 1) * h) + (h * h))))

let test_workload_leaf_case () =
  let s = Models.Tree_fc.spec ~height:3 ~vocab:30 ~hidden:8 () in
  let leaf = Workload.leaf_ops s.M.program in
  Alcotest.(check int) "explicit leaf case" 1 (List.length leaf);
  Alcotest.(check bool) "leaf is a gather, not a matvec" false
    (List.hd leaf).Workload.w_matvec

(* ---------- frameworks ---------- *)

let test_framework_hierarchy () =
  let run kind = Frameworks.run kind ~backend:Backend.gpu spec.M.program lin in
  let pytorch = run Frameworks.Pytorch in
  let dynet = run Frameworks.Dynet in
  let cavs = run Frameworks.Cavs in
  Alcotest.(check bool) "PyTorch slowest (no batching)" true
    (pytorch.Frameworks.total_us > dynet.Frameworks.total_us);
  Alcotest.(check bool) "Cavs beats DyNet (partial fusion, lighter graphs)" true
    (cavs.Frameworks.total_us < dynet.Frameworks.total_us);
  Alcotest.(check bool) "Cavs issues fewer kernels" true
    (cavs.Frameworks.kernel_calls < dynet.Frameworks.kernel_calls);
  Alcotest.(check bool) "PyTorch issues kernels per node" true
    (pytorch.Frameworks.kernel_calls > lin.Linearizer.num_nodes);
  Alcotest.(check bool) "profiled view slower than async view" true
    (dynet.Frameworks.profiled_total_us > dynet.Frameworks.total_us)

let test_framework_memory_ordering () =
  let mem kind = (Frameworks.run kind ~backend:Backend.gpu spec.M.program lin).Frameworks.memory_bytes in
  let dynet_inf = Frameworks.dynet_inference_memory ~backend:Backend.gpu spec.M.program lin in
  Alcotest.(check bool) "PyTorch < DyNet(inf) < Cavs < DyNet (Fig. 12)" true
    (mem Frameworks.Pytorch < dynet_inf
     && dynet_inf < mem Frameworks.Cavs
     && mem Frameworks.Cavs < mem Frameworks.Dynet)

(* ---------- roofline ---------- *)

let test_roofline_ordering =
  QCheck.Test.make ~name:"O_cortex > O_dynet > O_pytorch (App. C)" ~count:100
    QCheck.(pair (int_range 1 16) (int_range 64 1024))
    (fun (b, n) ->
      let h = 256 in
      let c = (Roofline.cortex ~n ~b ~h).Roofline.intensity in
      let d = (Roofline.dynet ~n ~b ~h).Roofline.intensity in
      let p = (Roofline.pytorch ~n ~b ~h).Roofline.intensity in
      c > d && d > p)

let test_roofline_asymptotics () =
  (* Under the paper's assumptions (N ~ H = N0 >> B) the closed forms
     approximate the exact counts. *)
  let n = 256 and h = 256 and b = 4 in
  let exact = (Roofline.cortex ~n ~b ~h).Roofline.intensity in
  let approx = Roofline.asymptotic_cortex ~b ~n0:256 in
  Alcotest.(check bool) "within 10%" true (Float.abs (exact -. approx) /. exact < 0.1);
  Alcotest.(check (float 1e-9)) "pytorch ~ 0.5" 0.5 (Roofline.asymptotic_pytorch ())

let () =
  Alcotest.run "backend"
    [
      ( "latency-model",
        [
          Alcotest.test_case "persistence" `Quick test_persistence_saves_param_traffic;
          Alcotest.test_case "lock-free" `Quick test_lock_free_not_slower;
          Alcotest.test_case "fusion-launches" `Quick test_fusion_reduces_launches;
          Alcotest.test_case "specialization-flops" `Quick test_specialization_cuts_flops;
          Alcotest.test_case "persist-threshold" `Quick test_persisted_bytes_threshold;
          Alcotest.test_case "backend-ordering" `Quick test_backends_ordering;
        ] );
      ( "workload",
        [
          Alcotest.test_case "treelstm" `Quick test_workload_treelstm;
          Alcotest.test_case "leaf-case" `Quick test_workload_leaf_case;
        ] );
      ( "frameworks",
        [
          Alcotest.test_case "hierarchy" `Quick test_framework_hierarchy;
          Alcotest.test_case "memory-ordering" `Quick test_framework_memory_ordering;
        ] );
      ( "roofline",
        [
          QCheck_alcotest.to_alcotest test_roofline_ordering;
          Alcotest.test_case "asymptotics" `Quick test_roofline_asymptotics;
        ] );
    ]
