(* The static memory planner: liveness-driven arena packing.

   Two layers of pinning.  Property tests build random lowered-shaped
   programs (random temporaries, random access sequences, some inside
   loops) and assert the planner's core safety invariant: two buffers
   whose live ranges intersect never share arena bytes.  Model tests run
   the planner over the real zoo artifacts — statically (the capacity
   check's configuration) and with a bound linearization's UF resolver
   (the bundle manifest's configuration) — and pin planned <= worst
   everywhere, with strict savings on TreeLSTM. *)

open Cortex
module M = Models.Common
module Q = QCheck

let spaces = [ Ir.Shared; Ir.Register ]

(* ---------- random programs ---------- *)

(* A program sketch is pure data so QCheck can shrink it: tensor
   element counts with a space each, and a flat access script of
   (tensor index, wrap-in-loop) segments chunked into kernels. *)
type sketch = {
  sk_tensors : (int * bool) list;  (* extent, is_shared (else register) *)
  sk_segments : (int list * int option) list;
      (* tensors touched; Some extent = wrap in a For of that extent *)
  sk_kernels : int;  (* chunk the segments into this many kernels *)
}

let build_program (sk : sketch) =
  let tensors =
    List.mapi
      (fun i (extent, shared) ->
        Ir.tensor
          ~space:(if shared then Ir.Shared else Ir.Register)
          (Printf.sprintf "t%d" i)
          [ Ir.Dim.fresh "d" ]
          [ Ir.int (max 1 extent) ])
      sk.sk_tensors
  in
  let arr = Array.of_list tensors in
  let n = Array.length arr in
  let segment (touched, loop) =
    let touched = List.map (fun i -> arr.(abs i mod n)) touched in
    let body =
      Ir.Seq
        (List.map (fun t -> Ir.Store (t, [ Ir.int 0 ], Ir.Load (t, [ Ir.int 0 ]))) touched)
    in
    match loop with
    | None -> body
    | Some e -> Ir.for_ (Ir.Var.fresh "i") (Ir.int (max 2 (abs e mod 5))) body
  in
  let stmts = List.map segment sk.sk_segments in
  let nk = max 1 sk.sk_kernels in
  let kernels =
    List.mapi
      (fun i s -> { Ir.kname = Printf.sprintf "k%d" (i mod nk); launch = Ir.Once; body = s })
      stmts
  in
  {
    Ir.pname = "random";
    params = [];
    inputs = [];
    temporaries = tensors;
    outputs = [];
    kernels;
  }

let sketch_gen =
  let open Q.Gen in
  let tensor = pair (1 -- 64) bool in
  let segment = pair (list_size (1 -- 2) (0 -- 16)) (opt (2 -- 4)) in
  map
    (fun (tensors, segments, kernels) -> { sk_tensors = tensors; sk_segments = segments; sk_kernels = kernels })
    (triple (list_size (1 -- 6) tensor) (list_size (1 -- 12) segment) (1 -- 3))

let print_sketch sk =
  Printf.sprintf "tensors=[%s] segments=[%s] kernels=%d"
    (String.concat ";" (List.map (fun (e, s) -> Printf.sprintf "%d%s" e (if s then "s" else "r")) sk.sk_tensors))
    (String.concat ";"
       (List.map
          (fun (ts, l) ->
            Printf.sprintf "(%s)%s"
              (String.concat "," (List.map string_of_int ts))
              (match l with None -> "" | Some e -> Printf.sprintf "@%d" e))
          sk.sk_segments))
    sk.sk_kernels

let arb_sketch = Q.make ~print:print_sketch sketch_gen

let check_plan_invariants ?(align = 64) (mp : Mem_plan.t) =
  (* Safety: simultaneously-live buffers never alias. *)
  let rec pairs = function
    | [] -> ()
    | p :: rest ->
      List.iter
        (fun q ->
          if Mem_plan.ranges_overlap p q && Mem_plan.offsets_overlap p q then
            Q.Test.fail_reportf "live buffers %s and %s share arena bytes"
              p.Mem_plan.pl_tensor.Ir.tname q.Mem_plan.pl_tensor.Ir.tname)
        rest;
      pairs rest
  in
  pairs mp.Mem_plan.placements;
  List.iter
    (fun (p : Mem_plan.placement) ->
      if p.Mem_plan.pl_offset mod align <> 0 then
        Q.Test.fail_reportf "%s unaligned at %d" p.Mem_plan.pl_tensor.Ir.tname p.Mem_plan.pl_offset;
      if p.Mem_plan.pl_offset + p.Mem_plan.pl_bytes > mp.Mem_plan.arena_bytes then
        Q.Test.fail_reportf "%s overflows the arena" p.Mem_plan.pl_tensor.Ir.tname)
    mp.Mem_plan.placements;
  if mp.Mem_plan.arena_bytes > mp.Mem_plan.worst_bytes then
    Q.Test.fail_reportf "planned %d exceeds worst %d" mp.Mem_plan.arena_bytes mp.Mem_plan.worst_bytes;
  true

let prop_no_overlap =
  Q.Test.make ~count:300 ~name:"live-range overlap implies disjoint offsets" arb_sketch
    (fun sk -> check_plan_invariants (Mem_plan.plan ~spaces (build_program sk)))

let prop_deterministic =
  Q.Test.make ~count:100 ~name:"planning is deterministic" arb_sketch (fun sk ->
      let p = build_program sk in
      Mem_plan.to_string (Mem_plan.plan ~spaces p) = Mem_plan.to_string (Mem_plan.plan ~spaces p))

(* ---------- UF-valued extents ---------- *)

let test_uf_extent_needs_resolver () =
  let u = Ir.Uf.fresh "width" ~arity:0 in
  let dyn =
    Ir.tensor ~space:Ir.Shared "dyn" [ Ir.Dim.fresh "d" ] [ Ir.UfCall (u, []) ]
  in
  let fixed = Ir.tensor ~space:Ir.Shared "fixed" [ Ir.Dim.fresh "d" ] [ Ir.int 8 ] in
  let body =
    Ir.Seq
      [
        Ir.Store (dyn, [ Ir.int 0 ], Ir.flt 1.0);
        Ir.Store (fixed, [ Ir.int 0 ], Ir.Load (dyn, [ Ir.int 0 ]));
      ]
  in
  let p =
    {
      Ir.pname = "uf";
      params = [];
      inputs = [];
      temporaries = [ dyn; fixed ];
      outputs = [];
      kernels = [ { Ir.kname = "k"; launch = Ir.Once; body } ];
    }
  in
  let unresolved = Mem_plan.plan ~spaces p in
  Alcotest.(check int) "dynamic tensor unplanned without a resolver" 1
    (List.length unresolved.Mem_plan.unplanned);
  Alcotest.(check int) "static tensor still packed" 1
    (List.length unresolved.Mem_plan.placements);
  let resolved = Mem_plan.plan ~uf:(fun _ _ -> 16) ~spaces p in
  Alcotest.(check int) "resolver sizes the dynamic tensor" 0
    (List.length resolved.Mem_plan.unplanned);
  Alcotest.(check int) "both packed" 2 (List.length resolved.Mem_plan.placements);
  (* Both live simultaneously (the same statement reads one and writes
     the other), so the arena must hold both. *)
  Alcotest.(check bool) "arena holds both" true
    (resolved.Mem_plan.arena_bytes >= (16 * 4) + (8 * 4))

let test_per_batch_run_conflicts () =
  (* The interpreter executes a maximal run of consecutive per-batch
     kernels batch-major: for each batch, every kernel of the run.
     Tensors touched by different kernels of the same run are therefore
     live across batch iterations — batch b+1's first kernel may read
     what batch b's last kernel wrote — so the planner must widen the
     whole run as one loop, not each kernel separately. *)
  let mk name = Ir.tensor ~space:Ir.Shared name [ Ir.Dim.fresh "d" ] [ Ir.int 8 ] in
  let a = mk "a" and b = mk "b" and c = mk "c" in
  let touch t = Ir.Store (t, [ Ir.int 0 ], Ir.Load (t, [ Ir.int 0 ])) in
  let per_batch name t =
    { Ir.kname = name; launch = Ir.PerInternalBatch (Ir.Var.fresh "bi"); body = touch t }
  in
  let p =
    {
      Ir.pname = "run";
      params = [];
      inputs = [];
      temporaries = [ a; b; c ];
      outputs = [];
      (* Three kernels keep a (first) and c (last) an event apart, so
         per-kernel widening gave them disjoint ranges. *)
      kernels = [ per_batch "k0" a; per_batch "k1" b; per_batch "k2" c ];
    }
  in
  let mp = Mem_plan.plan ~spaces p in
  match mp.Mem_plan.placements with
  | [ _; _; _ ] as ps ->
    List.iteri
      (fun i p ->
        List.iteri
          (fun j q ->
            if i < j then begin
              Alcotest.(check bool) "same-run tensors' live ranges overlap" true
                (Mem_plan.ranges_overlap p q);
              Alcotest.(check bool) "same-run tensors never alias" false
                (Mem_plan.offsets_overlap p q)
            end)
          ps)
      ps
  | ps -> Alcotest.failf "expected 3 placements, got %d" (List.length ps)

let test_zero_denominator_extent () =
  (* A zero constant denominator makes the extent non-static, not a
     Division_by_zero escaping [plan]. *)
  let bad ext name =
    Ir.tensor ~space:Ir.Shared name [ Ir.Dim.fresh "d" ] [ ext ]
  in
  let div = bad (Ir.Binop (Ir.Div, Ir.int 8, Ir.int 0)) "div0" in
  let md = bad (Ir.Binop (Ir.Mod, Ir.int 8, Ir.int 0)) "mod0" in
  let body =
    Ir.Seq
      [
        Ir.Store (div, [ Ir.int 0 ], Ir.flt 1.0);
        Ir.Store (md, [ Ir.int 0 ], Ir.flt 1.0);
      ]
  in
  let p =
    {
      Ir.pname = "div0";
      params = [];
      inputs = [];
      temporaries = [ div; md ];
      outputs = [];
      kernels = [ { Ir.kname = "k"; launch = Ir.Once; body } ];
    }
  in
  let mp = Mem_plan.plan ~spaces p in
  Alcotest.(check int) "both extents treated as non-static" 2
    (List.length mp.Mem_plan.unplanned);
  Alcotest.(check int) "nothing packed" 0 (List.length mp.Mem_plan.placements)

(* ---------- the model zoo ---------- *)

let planned_for name =
  let spec = Models.Catalog.get name Models.Catalog.Small in
  let compiled = Runtime.compile ~options:(Runtime.options_for spec) spec.M.program in
  let structure = spec.M.dataset (Rng.create 3) ~batch:8 in
  let bound = Lower.bind compiled (Linearizer.run structure) in
  let static = Mem_plan.plan ~spaces compiled.Lower.prog in
  let resolved = Mem_plan.plan ~uf:bound.Lower.uf_resolver ~spaces compiled.Lower.prog in
  (static, resolved)

let zoo = [ "TreeFC"; "DAG-RNN"; "TreeGRU"; "TreeLSTM" ]

let test_zoo_planned_le_worst () =
  List.iter
    (fun name ->
      let static, resolved = planned_for name in
      ignore (check_plan_invariants static);
      ignore (check_plan_invariants resolved);
      Alcotest.(check bool)
        (name ^ ": static planned <= worst")
        true
        (static.Mem_plan.arena_bytes <= static.Mem_plan.worst_bytes);
      Alcotest.(check bool)
        (name ^ ": resolved planned <= worst")
        true
        (resolved.Mem_plan.arena_bytes <= resolved.Mem_plan.worst_bytes);
      Alcotest.(check bool)
        (name ^ ": resolver plans at least as much")
        true
        (List.length resolved.Mem_plan.placements >= List.length static.Mem_plan.placements))
    zoo

let test_treelstm_strict_savings () =
  (* The acceptance bar: liveness packing must beat sum-of-buffers on
     TreeLSTM's resolved footprint, not merely tie it. *)
  let _, resolved = planned_for "TreeLSTM" in
  Alcotest.(check bool) "planned > 0" true (resolved.Mem_plan.arena_bytes > 0);
  Alcotest.(check bool)
    (Printf.sprintf "planned %d strictly below worst %d" resolved.Mem_plan.arena_bytes
       resolved.Mem_plan.worst_bytes)
    true
    (resolved.Mem_plan.arena_bytes < resolved.Mem_plan.worst_bytes)

let test_cost_records_planned () =
  (* Cost.analyze must carry the static planner's number, and it can
     never exceed the constant-extent worst case it replaces. *)
  let spec = Models.Catalog.get "TreeLSTM" Models.Catalog.Small in
  let compiled = Runtime.compile ~options:(Runtime.options_for spec) spec.M.program in
  let structure = spec.M.dataset (Rng.create 3) ~batch:8 in
  let bound = Lower.bind compiled (Linearizer.run structure) in
  let cost =
    Cost.analyze ~uf:bound.Lower.uf_resolver
      ~num_internal_batches:bound.Lower.num_batch_launches compiled.Lower.prog
  in
  let static = Mem_plan.plan ~spaces compiled.Lower.prog in
  Alcotest.(check (float 1e-9)) "onchip_planned_bytes is the static arena"
    (float_of_int static.Mem_plan.arena_bytes)
    cost.Cost.onchip_planned_bytes

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "mem_plan"
    [
      ("properties", [ q prop_no_overlap; q prop_deterministic ]);
      ( "liveness",
        [
          Alcotest.test_case "uf-extents" `Quick test_uf_extent_needs_resolver;
          Alcotest.test_case "per-batch-run" `Quick test_per_batch_run_conflicts;
          Alcotest.test_case "zero-denominator" `Quick test_zero_denominator_extent;
          Alcotest.test_case "cost-integration" `Quick test_cost_records_planned;
        ] );
      ( "zoo",
        [
          Alcotest.test_case "planned-le-worst" `Quick test_zoo_planned_le_worst;
          Alcotest.test_case "treelstm-strict" `Quick test_treelstm_strict_savings;
        ] );
    ]
