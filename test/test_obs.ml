(* The observability layer: Chrome-trace serialization, span recording
   over both clocks, the trace validator's typed invariants, and the two
   load-bearing properties — recording interferes with nothing, and
   profiled runs are byte-identical under the logical clock. *)

open Cortex
module M = Models.Common
module CT = Chrome_trace

let gpu = Backend.gpu
let small_spec = Models.Tree_lstm.spec ~vocab:50 ~hidden:8 ()

(* ---------- chrome trace serialization ---------- *)

let test_json_roundtrip () =
  let events =
    [
      CT.process_name ~pid:1 "proc";
      CT.thread_name ~pid:1 ~tid:1 "track";
      CT.event ~cat:"wall"
        ~args:[ ("k", CT.Int 3); ("f", CT.Float 1.5); ("s", CT.Str "x\"y"); ("b", CT.Bool true) ]
        ~name:"span" ~ph:CT.Begin ~ts_us:10.0 ~pid:1 ~tid:1 ();
      CT.event ~cat:"wall" ~name:"span" ~ph:CT.End ~ts_us:20.5 ~pid:1 ~tid:1 ();
      CT.event ~cat:"sim" ~name:"tick" ~ph:CT.Instant ~ts_us:15.25 ~pid:2 ~tid:1 ();
    ]
  in
  let json = CT.to_json events in
  match CT.parse json with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok back ->
    Alcotest.(check int) "same count" (List.length events) (List.length back);
    Alcotest.(check bool) "round-trips structurally" true (events = back);
    Alcotest.(check string) "canonical re-serialization" json (CT.to_json back)

let test_parse_bare_array () =
  match CT.parse {|[{"name":"a","cat":"","ph":"B","ts":1,"pid":1,"tid":1},
                    {"name":"a","cat":"","ph":"E","ts":2,"pid":1,"tid":1},
                    {"name":"flow","ph":"s","ts":1,"pid":1,"tid":1}]|} with
  | Error e -> Alcotest.failf "bare array rejected: %s" e
  | Ok events ->
    (* The unmodeled "s" (flow) phase is skipped, not an error. *)
    Alcotest.(check int) "two modeled events" 2 (List.length events);
    Alcotest.(check bool) "phases" true
      (List.map (fun e -> e.CT.ev_ph) events = [ CT.Begin; CT.End ])

let test_parse_rejects () =
  List.iter
    (fun (label, doc) ->
      match CT.parse doc with
      | Ok _ -> Alcotest.failf "%s accepted" label
      | Error _ -> ())
    [
      ("trailing garbage", "[] x");
      ("unterminated string", {|[{"name":"a|});
      ("missing name", {|[{"cat":"","ph":"B","ts":1,"pid":1,"tid":1}]|});
      ("missing ts", {|[{"name":"a","ph":"B","pid":1,"tid":1}]|});
      ("no traceEvents", {|{"other":[]}|});
      ("scalar document", "42");
    ]

(* ---------- span recording ---------- *)

let test_logical_clock_nesting () =
  let obs = Obs.create ~clock:Obs.Logical () in
  let o = Some obs in
  let v =
    Obs.wall_span o ~track:"compile" "outer" (fun () ->
        Obs.wall_span o ~track:"compile" "inner" (fun () -> 41) + 1)
  in
  Alcotest.(check int) "wall_span returns f's value" 42 v;
  let shape =
    List.filter_map
      (fun e ->
        match e.CT.ev_ph with
        | CT.Begin -> Some ("B " ^ e.CT.ev_name)
        | CT.End -> Some ("E " ^ e.CT.ev_name)
        | _ -> None)
      (Obs.events obs)
  in
  Alcotest.(check (list string)) "balanced, outer encloses inner"
    [ "B outer"; "B inner"; "E inner"; "E outer" ] shape;
  (* Logical ticks are strictly monotone begin-to-end. *)
  let ts =
    List.filter_map
      (fun e -> if e.CT.ev_ph = CT.Metadata then None else Some e.CT.ev_ts_us)
      (Obs.events obs)
  in
  Alcotest.(check (list (float 0.0))) "tick order" [ 1.0; 2.0; 3.0; 4.0 ] ts

let test_none_handle_is_passthrough () =
  Alcotest.(check int) "wall_span on None just runs f" 7
    (Obs.wall_span None ~track:"t" "s" (fun () -> 7));
  (* The metric shorthands must be callable on None. *)
  Obs.incr None "c";
  Obs.set_gauge None "g" 1.0;
  Obs.observe None "h" 1.0;
  Obs.sim_span None ~track:"t" ~name:"s" ~start_us:0.0 ~end_us:1.0 ();
  Alcotest.(check bool) "no snapshot on None" true (Obs.snapshot None = None)

let test_sim_span_rejects_backwards () =
  let obs = Some (Obs.create ()) in
  try
    Obs.sim_span obs ~track:"d" ~name:"w" ~start_us:10.0 ~end_us:5.0 ();
    Alcotest.fail "backwards sim span accepted"
  with Invalid_argument _ -> ()

let test_overlapping_spans_rejected_at_export () =
  let obs = Obs.create () in
  let o = Some obs in
  Obs.sim_span o ~track:"d" ~name:"a" ~start_us:0.0 ~end_us:10.0 ();
  Obs.sim_span o ~track:"d" ~name:"b" ~start_us:5.0 ~end_us:15.0 ();
  try
    ignore (Obs.events obs);
    Alcotest.fail "improper overlap exported"
  with Invalid_argument _ -> ()

let test_reset () =
  let obs = Obs.create ~clock:Obs.Logical () in
  let o = Some obs in
  Obs.wall_span o ~track:"compile" "s" (fun () -> ());
  Obs.incr o "c";
  Obs.reset obs;
  Alcotest.(check int) "no events after reset" 0 (List.length (Obs.events obs));
  (match Obs.snapshot o with
   | Some snap -> Alcotest.(check bool) "metrics dropped" true (snap = Metrics.empty_snapshot)
   | None -> Alcotest.fail "snapshot disappeared");
  (* The logical clock restarts: a fresh span gets ticks 1 and 2 again. *)
  Obs.wall_span o ~track:"compile" "s" (fun () -> ());
  let ts =
    List.filter_map
      (fun e -> if e.CT.ev_ph = CT.Metadata then None else Some e.CT.ev_ts_us)
      (Obs.events obs)
  in
  Alcotest.(check (list (float 0.0))) "clock restarted" [ 1.0; 2.0 ] ts

(* ---------- metrics ---------- *)

let test_metrics_snapshot () =
  let m = Metrics.create () in
  Metrics.incr m "b";
  Metrics.incr m ~by:4 "a";
  Metrics.set m "g" 0.5;
  List.iter (Metrics.observe m "lat") [ 4.0; 1.0; 2.0; 3.0 ];
  let snap = Metrics.snapshot m in
  Alcotest.(check bool) "counters name-sorted" true
    (List.map fst snap.Metrics.counters = [ "a"; "b" ]);
  Alcotest.(check int) "counter accumulates" 4 (List.assoc "a" snap.Metrics.counters);
  Alcotest.(check (float 1e-9)) "gauge last write" 0.5 (List.assoc "g" snap.Metrics.gauges);
  let h = List.assoc "lat" snap.Metrics.histograms in
  Alcotest.(check int) "hist count" 4 h.Metrics.hs_count;
  Alcotest.(check (float 1e-9)) "hist mean" 2.5 h.Metrics.hs_mean;
  Alcotest.(check (float 1e-9)) "hist p50 matches Stats" (Stats.p50 [ 1.0; 2.0; 3.0; 4.0 ]) h.Metrics.hs_p50;
  Alcotest.(check (float 1e-9)) "hist max" 4.0 h.Metrics.hs_max;
  Alcotest.(check int) "hist buckets count everything" 4
    (Array.fold_left ( + ) 0 h.Metrics.hs_hist.Stats.h_counts);
  (* Two structurally equal registries render identically. *)
  let m' = Metrics.create () in
  Metrics.set m' "g" 0.5;
  Metrics.incr m' ~by:4 "a";
  Metrics.incr m' "b";
  List.iter (Metrics.observe m' "lat") [ 4.0; 1.0; 2.0; 3.0 ];
  Alcotest.(check string) "render is insertion-order independent"
    (Metrics.render snap) (Metrics.render (Metrics.snapshot m'))

(* ---------- the validator's typed invariants ---------- *)

let ev ?(cat = "") ?(ph = CT.Begin) ?(tid = 1) name ts =
  CT.event ~cat ~name ~ph ~ts_us:ts ~pid:1 ~tid ()

let check_error label expected events =
  match Obs_validate.check events with
  | Ok () -> Alcotest.failf "%s: accepted" label
  | Error e ->
    let tag = function
      | Obs_validate.Non_monotone _ -> "non-monotone"
      | Obs_validate.End_without_begin _ -> "end-without-begin"
      | Obs_validate.Mismatched_end _ -> "mismatched-end"
      | Obs_validate.Unclosed_begin _ -> "unclosed-begin"
      | Obs_validate.Outside_drain _ -> "outside-drain"
    in
    Alcotest.(check string) label expected (tag e);
    (* Every error renders to something human-readable. *)
    Alcotest.(check bool) "message non-empty" true
      (String.length (Obs_validate.error_to_string e) > 0)

let test_validate_minimal_cases () =
  Alcotest.(check bool) "empty trace valid" true (Obs_validate.check [] = Ok ());
  Alcotest.(check bool) "balanced pair valid" true
    (Obs_validate.check [ ev "a" 1.0; ev ~ph:CT.End "a" 2.0 ] = Ok ());
  check_error "backwards timestamps" "non-monotone"
    [ ev "a" 5.0; ev ~ph:CT.End "a" 1.0 ];
  check_error "stray end" "end-without-begin" [ ev ~ph:CT.End "a" 1.0 ];
  check_error "wrong name" "mismatched-end" [ ev "a" 1.0; ev ~ph:CT.End "b" 2.0 ];
  check_error "open at track end" "unclosed-begin" [ ev "a" 1.0 ];
  (* A drain span on one sim track; a sim event beyond it on another. *)
  check_error "event past the drain" "outside-drain"
    [
      ev ~cat:"sim" "drain" 0.0;
      ev ~cat:"sim" ~ph:CT.End "drain" 10.0;
      ev ~cat:"sim" ~ph:CT.Instant ~tid:2 "late" 20.0;
    ];
  (* Metadata is exempt from every timestamp rule. *)
  Alcotest.(check bool) "metadata out of order tolerated" true
    (Obs_validate.check [ ev "a" 1.0; CT.thread_name ~pid:1 ~tid:1 "t"; ev ~ph:CT.End "a" 2.0 ]
     = Ok ())

(* ---------- profiled chaos runs ---------- *)

let chaos_trace =
  Trace.poisson ~deadline_us:4000.0 (Rng.create 17) ~rate_rps:20000.0
    ~duration_ms:5.0
    ~gen:(fun rng -> Gen.sst_tree rng ~vocab:50 ())

let chaos_faults =
  [
    Fault.Transient { device = -1; prob = 0.2; from_us = 0.0; until_us = infinity };
    Fault.Fail_stop { device = 0; at_us = 2500.0 };
  ]

let profiled_run ?obs () =
  let policy = { Engine.max_batch = 8; max_wait_us = 300.0; bucketing = Engine.Fifo } in
  let engine =
    Engine.of_spec
      ~config:
        (Engine.Config.make ~policy ~dispatch:Dispatch.Least_loaded
           ~devices:[ gpu; gpu ] ~faults:chaos_faults ~seed:42
           ~params:(small_spec.M.init_params (Rng.create 7))
           ?obs ())
      small_spec ~backend:gpu
  in
  Engine.run_trace engine chaos_trace

let profiled_events () =
  let obs = Obs.create ~clock:Obs.Logical () in
  ignore (profiled_run ~obs ());
  Obs.events obs

let test_chaos_profile_validates () =
  let events = profiled_events () in
  Alcotest.(check bool) "has a drain span" true
    (List.exists (fun e -> e.CT.ev_name = "drain" && e.CT.ev_ph = CT.Begin) events);
  Alcotest.(check bool) "has device spans" true
    (List.exists (fun e -> e.CT.ev_name = "window") events);
  Alcotest.(check bool) "has arrivals" true
    (List.exists (fun e -> e.CT.ev_name = "arrival" && e.CT.ev_ph = CT.Instant) events);
  Alcotest.(check bool) "has compile spans" true
    (List.exists (fun e -> e.CT.ev_name = "lower") events);
  (* The fail-stop at 2.5 ms actually aborted something in flight. *)
  Alcotest.(check bool) "has an abort span" true
    (List.exists (fun e -> e.CT.ev_name = "abort") events);
  match Obs_validate.check events with
  | Ok () -> ()
  | Error e -> Alcotest.failf "profile invalid: %s" (Obs_validate.error_to_string e)

let test_compile_only_profile_validates () =
  (* No drain recorded: the containment invariant is vacuous and the
     wall-clock spans must stand on their own. *)
  let obs = Obs.create ~clock:Obs.Logical () in
  ignore (Runtime.compile ~obs small_spec.M.program);
  match Obs_validate.check (Obs.events obs) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "compile profile invalid: %s" (Obs_validate.error_to_string e)

(* Corrupt real exported profiles, one per invariant, and demand the
   matching typed rejection. *)

let test_corrupted_profiles_rejected () =
  let events = profiled_events () in
  let key e = (e.CT.ev_pid, e.CT.ev_tid) in
  (* Non-monotone: push the first event of some track past its successor. *)
  let first = List.find (fun e -> e.CT.ev_ph <> CT.Metadata) events in
  let second =
    List.find (fun e -> e != first && e.CT.ev_ph <> CT.Metadata && key e = key first) events
  in
  check_error "timestamps reordered" "non-monotone"
    (List.map
       (fun e -> if e == first then { e with CT.ev_ts_us = second.CT.ev_ts_us +. 1.0 } else e)
       events);
  (* End-without-begin: drop the outermost begin of the compile track. *)
  let rec drop_first_begin = function
    | [] -> []
    | e :: rest when e.CT.ev_ph = CT.Begin -> rest
    | e :: rest -> e :: drop_first_begin rest
  in
  check_error "a begin removed" "end-without-begin" (drop_first_begin events);
  (* Mismatched end: rename the first end. *)
  let renamed =
    let done_ = ref false in
    List.map
      (fun e ->
        if (not !done_) && e.CT.ev_ph = CT.End then begin
          done_ := true;
          { e with CT.ev_name = "corrupted" }
        end
        else e)
      events
  in
  check_error "an end renamed" "mismatched-end" renamed;
  (* Unclosed begin: drop the final end (the drain span's close). *)
  let last = List.nth events (List.length events - 1) in
  Alcotest.(check bool) "trace ends on an end event" true (last.CT.ev_ph = CT.End);
  check_error "an end removed" "unclosed-begin"
    (List.filter (fun e -> e != last) events);
  (* Outside drain: append a sim instant past the drain's extent. *)
  let requests_track =
    List.find
      (fun e ->
        e.CT.ev_ph = CT.Metadata && e.CT.ev_name = "thread_name"
        && List.assoc_opt "name" e.CT.ev_args = Some (CT.Str "requests"))
      events
  in
  let horizon =
    List.fold_left (fun m e -> Float.max m e.CT.ev_ts_us) 0.0 events
  in
  check_error "sim event past the drain" "outside-drain"
    (events
     @ [
         CT.event ~cat:"sim" ~name:"late" ~ph:CT.Instant ~ts_us:(horizon +. 1e6)
           ~pid:requests_track.CT.ev_pid ~tid:requests_track.CT.ev_tid ();
       ])

(* ---------- zero interference (property) ---------- *)

(* Over random (model, trace, fault spec): a chaos drain with the
   handle installed must produce the very same summary — per-request
   reports, SLO block, windows, device accounting and numeric results,
   bitwise — as the same drain without it.

   One normalization is required and it is not about observability:
   each [Engine.of_spec] compiles afresh, and IR tensor ids come from a
   process-global counter, so the raw [Cost.t] inside each window report
   (its [param_sizes] are keyed by tensor id) differs between ANY two
   engines in one process, observed or not.  We therefore compare the
   cost through its id-independent derived quantities and everything
   else bitwise. *)
let canon_summary (s : Engine.summary) =
  let canon_cost (c : Cost.t) =
    ( Cost.total_flops c,
      Cost.global_traffic c,
      Cost.onchip_traffic c,
      Cost.total_launches c,
      c.Cost.barrier_count,
      c.Cost.param_total_bytes,
      List.length c.Cost.param_sizes )
  in
  let canon_report (r : Runtime.report) =
    ( r.Runtime.latency,
      canon_cost r.Runtime.cost,
      r.Runtime.linearize_us,
      r.Runtime.device_memory_bytes,
      r.Runtime.num_nodes,
      r.Runtime.occupancy )
  in
  let windows =
    List.map
      (fun (w : Engine.window_report) ->
        ( w.Engine.wr_index,
          w.Engine.wr_size,
          w.Engine.wr_nodes,
          w.Engine.wr_device,
          w.Engine.wr_cache_hit,
          w.Engine.wr_attempts,
          w.Engine.wr_dispatch_us,
          canon_report w.Engine.wr_report ))
      s.Engine.windows
  in
  ({ s with Engine.windows = []; metrics = None }, windows)

let test_zero_interference =
  QCheck.Test.make ~name:"obs-on equals obs-off bitwise" ~count:10
    QCheck.(triple (int_range 0 2) (int_range 0 999) (int_range 0 3))
    (fun (mi, seed, fi) ->
      let spec =
        match mi with
        | 0 -> Models.Tree_lstm.spec ~vocab:50 ~hidden:8 ()
        | 1 -> Models.Tree_rnn.spec ~vocab:50 ~hidden:8 ()
        | _ -> Models.Tree_gru.spec ~vocab:50 ~hidden:8 ()
      in
      let faults =
        match fi with
        | 0 -> []
        | 1 -> [ Fault.Transient { device = -1; prob = 0.3; from_us = 0.0; until_us = infinity } ]
        | 2 -> [ Fault.Fail_stop { device = 0; at_us = 1000.0 } ]
        | _ ->
          [
            Fault.Straggler { device = 0; factor = 2.0; from_us = 0.0; until_us = 3000.0 };
            Fault.Transient { device = -1; prob = 0.1; from_us = 0.0; until_us = infinity };
          ]
      in
      let trace =
        Trace.poisson ~deadline_us:4000.0 (Rng.create seed) ~rate_rps:10000.0
          ~duration_ms:3.0
          ~gen:(fun rng -> Gen.sst_tree rng ~vocab:50 ())
      in
      let run ?obs () =
        let policy = { Engine.max_batch = 8; max_wait_us = 300.0; bucketing = Engine.Fifo } in
        let engine =
          Engine.of_spec
            ~config:
              (Engine.Config.make ~policy ~dispatch:Dispatch.Least_loaded
                 ~devices:[ gpu; gpu ] ~faults ~seed
                 ~params:(spec.M.init_params (Rng.create 7))
                 ?obs ())
            spec ~backend:gpu
        in
        Engine.run_trace engine trace
      in
      let observed = run ~obs:(Obs.create ~clock:Obs.Logical ()) () in
      let bare = run () in
      observed.Engine.metrics <> None && canon_summary observed = canon_summary bare)

(* ---------- determinism of profiled runs ---------- *)

let test_profiled_run_byte_identical () =
  let profile () =
    let obs = Obs.create ~clock:Obs.Logical () in
    let s = profiled_run ~obs () in
    let metrics =
      match s.Engine.metrics with
      | Some snap -> Metrics.render snap
      | None -> Alcotest.fail "no metrics snapshot"
    in
    (Obs.to_json obs, metrics)
  in
  let j1, m1 = profile () in
  let j2, m2 = profile () in
  Alcotest.(check string) "trace JSON byte-identical" j1 j2;
  Alcotest.(check string) "metric snapshot byte-identical" m1 m2;
  (* And the canonical JSON survives its own parser: what CI diffs is
     also what validate-trace re-checks. *)
  match CT.parse j1 with
  | Error e -> Alcotest.failf "exported trace does not re-parse: %s" e
  | Ok events -> (
    match Obs_validate.check events with
    | Ok () -> ()
    | Error e -> Alcotest.failf "re-parsed trace invalid: %s" (Obs_validate.error_to_string e))

let () =
  Alcotest.run "obs"
    [
      ( "chrome-trace",
        [
          Alcotest.test_case "json-roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "bare-array" `Quick test_parse_bare_array;
          Alcotest.test_case "parse-rejects" `Quick test_parse_rejects;
        ] );
      ( "recording",
        [
          Alcotest.test_case "logical-nesting" `Quick test_logical_clock_nesting;
          Alcotest.test_case "none-passthrough" `Quick test_none_handle_is_passthrough;
          Alcotest.test_case "backwards-span" `Quick test_sim_span_rejects_backwards;
          Alcotest.test_case "overlap-rejected" `Quick test_overlapping_spans_rejected_at_export;
          Alcotest.test_case "reset" `Quick test_reset;
        ] );
      ( "metrics",
        [ Alcotest.test_case "snapshot" `Quick test_metrics_snapshot ] );
      ( "validate",
        [
          Alcotest.test_case "minimal-cases" `Quick test_validate_minimal_cases;
          Alcotest.test_case "chaos-profile" `Quick test_chaos_profile_validates;
          Alcotest.test_case "compile-only" `Quick test_compile_only_profile_validates;
          Alcotest.test_case "corrupted-rejected" `Quick test_corrupted_profiles_rejected;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest test_zero_interference;
          Alcotest.test_case "byte-identical" `Quick test_profiled_run_byte_identical;
        ] );
    ]
