(* Cross-validation of the static cost walker against the interpreter's
   runtime counters: on the same compiled program and input, the
   multiplicative static walk must produce exactly the FLOP, load and
   store counts that actually executing the kernels produces. *)

open Cortex
module M = Models.Common

let counts_agree ?(options = Lower.default) (spec : M.t) ~batch =
  let compiled = Runtime.compile ~options:(Runtime.options_for ~base:options spec) spec.M.program in
  let structure = spec.M.dataset (Rng.create 31) ~batch in
  let lin = Linearizer.run structure in
  (* Dynamic execution with counters on. *)
  let bound = Lower.bind ~count:true compiled lin in
  let params = spec.M.init_params (Rng.create 32) in
  List.iter
    (fun (name, t) -> Interp.bind_tensor bound.Lower.ctx t (params name))
    compiled.Lower.param_tensors;
  Interp.run_program bound.Lower.ctx compiled.Lower.prog;
  let dynamic = Interp.counters bound.Lower.ctx in
  (* Static walk. *)
  let cost =
    Cost.analyze ~uf:bound.Lower.uf_resolver
      ~num_internal_batches:bound.Lower.num_batch_launches compiled.Lower.prog
  in
  let static_flops = Cost.total_flops cost in
  let static_loads =
    List.fold_left
      (fun acc (k : Cost.kernel_cost) ->
        List.fold_left
          (fun acc (s : Cost.segment) -> acc +. Array.fold_left ( +. ) 0.0 s.Cost.reads)
          acc k.Cost.segments)
      0.0 cost.Cost.kernels
    /. float_of_int Cost.bytes_per_elem
  in
  let static_stores =
    List.fold_left
      (fun acc (k : Cost.kernel_cost) ->
        List.fold_left
          (fun acc (s : Cost.segment) -> acc +. Array.fold_left ( +. ) 0.0 s.Cost.writes)
          acc k.Cost.segments)
      0.0 cost.Cost.kernels
    /. float_of_int Cost.bytes_per_elem
  in
  Alcotest.(check int)
    (spec.M.name ^ " flops")
    dynamic.Interp.flops (int_of_float static_flops);
  Alcotest.(check int) (spec.M.name ^ " loads") dynamic.Interp.loads (int_of_float static_loads);
  Alcotest.(check int) (spec.M.name ^ " stores") dynamic.Interp.stores
    (int_of_float static_stores)

let small_specs =
  [
    ("TreeRNN", Models.Tree_rnn.spec ~vocab:30 ~hidden:6 ());
    ("TreeLSTM", Models.Tree_lstm.spec ~vocab:30 ~hidden:6 ());
    ("TreeGRU", Models.Tree_gru.spec ~vocab:30 ~hidden:6 ());
    ("TreeFC", Models.Tree_fc.spec ~height:4 ~vocab:30 ~hidden:6 ());
    ("MV-RNN", Models.Mv_rnn.spec ~vocab:10 ~hidden:4 ());
    ("DAG-RNN", Models.Dag_rnn.spec ~rows:4 ~cols:4 ~hidden:6 ());
  ]

let variants =
  [
    ("default", Lower.default);
    ("baseline", Lower.baseline);
    ("nospec", { Lower.default with Lower.specialize = false });
    ("nobatch", { Lower.default with Lower.dynamic_batch = false });
  ]

let test_one (mname, spec) (vname, options) () = ignore vname; ignore mname;
  counts_agree ~options spec ~batch:2

let test_per_space_counts () =
  (* On-chip vs off-chip split agrees too. *)
  let spec = Models.Tree_lstm.spec ~vocab:30 ~hidden:6 () in
  let compiled = Runtime.compile ~options:(Runtime.options_for spec) spec.M.program in
  let structure = spec.M.dataset (Rng.create 77) ~batch:2 in
  let lin = Linearizer.run structure in
  let bound = Lower.bind ~count:true compiled lin in
  let params = spec.M.init_params (Rng.create 78) in
  List.iter
    (fun (name, t) -> Interp.bind_tensor bound.Lower.ctx t (params name))
    compiled.Lower.param_tensors;
  Interp.run_program bound.Lower.ctx compiled.Lower.prog;
  let dynamic = Interp.counters bound.Lower.ctx in
  let cost =
    Cost.analyze ~uf:bound.Lower.uf_resolver
      ~num_internal_batches:bound.Lower.num_batch_launches compiled.Lower.prog
  in
  let static_space si =
    List.fold_left
      (fun acc (k : Cost.kernel_cost) ->
        List.fold_left (fun acc (s : Cost.segment) -> acc +. s.Cost.reads.(si)) acc k.Cost.segments)
      0.0 cost.Cost.kernels
    /. float_of_int Cost.bytes_per_elem
  in
  List.iter
    (fun space ->
      let si = Interp.space_index space in
      Alcotest.(check int)
        (Ir.space_name space ^ " loads")
        dynamic.Interp.loads_by_space.(si)
        (int_of_float (static_space si)))
    [ Ir.Param; Ir.Global; Ir.Shared; Ir.Register ]

let () =
  Alcotest.run "cost"
    [
      ( "static-vs-dynamic",
        List.concat_map
          (fun model ->
            List.map
              (fun variant ->
                Alcotest.test_case
                  (fst model ^ "/" ^ fst variant)
                  `Quick (test_one model variant))
              variants)
          small_specs );
      ("per-space", [ Alcotest.test_case "TreeLSTM" `Quick test_per_space_counts ]);
    ]
