(* Unit and property tests for cortex.util: the deterministic RNG,
   table rendering and numeric helpers. *)

module Rng = Cortex_util.Rng
module Table = Cortex_util.Table
module Stats = Cortex_util.Stats

let test_rng_deterministic () =
  let a = Rng.create 17 and b = Rng.create 17 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.int a 1_000_000 = Rng.int b 1_000_000 then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_rng_int_range =
  QCheck.Test.make ~name:"Rng.int stays in range" ~count:500
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let test_rng_uniform_range =
  QCheck.Test.make ~name:"Rng.uniform in [0,1)" ~count:500 QCheck.small_int (fun seed ->
      let rng = Rng.create seed in
      let v = Rng.uniform rng in
      v >= 0.0 && v < 1.0)

let test_rng_split_independent () =
  let parent = Rng.create 5 in
  let child = Rng.split parent in
  (* The split stream must not simply replay the parent's stream. *)
  let overlap = ref 0 in
  for _ = 1 to 32 do
    if Rng.int parent 1_000_000 = Rng.int child 1_000_000 then incr overlap
  done;
  Alcotest.(check bool) "split independent" true (!overlap < 3)

let test_shuffle_permutation =
  QCheck.Test.make ~name:"shuffle is a permutation" ~count:200
    QCheck.(pair small_int (list_of_size (QCheck.Gen.int_range 0 30) int))
    (fun (seed, l) ->
      let a = Array.of_list l in
      Rng.shuffle (Rng.create seed) a;
      List.sort compare (Array.to_list a) = List.sort compare l)

let test_gaussian_moments () =
  let rng = Rng.create 11 in
  let n = 20_000 in
  let xs = List.init n (fun _ -> Rng.gaussian rng ~mean:3.0 ~std:2.0) in
  let mean = Stats.mean xs in
  let var = Stats.mean (List.map (fun x -> (x -. mean) ** 2.0) xs) in
  Alcotest.(check bool) "mean ~ 3" true (Float.abs (mean -. 3.0) < 0.1);
  Alcotest.(check bool) "std ~ 2" true (Float.abs (sqrt var -. 2.0) < 0.1)

let test_table_render () =
  let out = Table.render ~header:[ "a"; "bb" ] [ [ "x"; "1" ]; [ "yyy"; "22" ] ] in
  let lines = String.split_on_char '\n' out in
  Alcotest.(check int) "4 lines + trailing" 5 (List.length lines);
  (* all non-empty lines equally wide *)
  let widths = List.filter_map (fun l -> if l = "" then None else Some (String.length l)) lines in
  List.iter (fun w -> Alcotest.(check int) "aligned" (List.hd widths) w) widths

let test_stats () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "median odd" 2.0 (Stats.median [ 3.0; 1.0; 2.0 ]);
  Alcotest.(check (float 1e-9)) "median even" 2.5 (Stats.median [ 4.0; 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "geomean" 2.0 (Stats.geomean [ 1.0; 4.0 ]);
  Alcotest.(check (float 1e-9)) "clamp" 1.0 (Stats.clamp ~lo:0.0 ~hi:1.0 5.0);
  Alcotest.(check int) "clamp_int" 3 (Stats.clamp_int ~lo:3 ~hi:9 (-2))

let test_percentiles () =
  Alcotest.(check (float 1e-9)) "p50 odd = median" 2.0 (Stats.p50 [ 3.0; 1.0; 2.0 ]);
  Alcotest.(check (float 1e-9)) "p50 even = median" 2.5 (Stats.p50 [ 4.0; 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "p0 = min" 1.0 (Stats.percentile 0.0 [ 5.0; 1.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "p100 = max" 5.0 (Stats.percentile 100.0 [ 5.0; 1.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "singleton" 7.0 (Stats.p99 [ 7.0 ]);
  (* Type-7 interpolation on 1..100: rank = 0.99 * 99 = 98.01. *)
  let hundred = List.init 100 (fun i -> float_of_int (i + 1)) in
  Alcotest.(check (float 1e-9)) "p99 of 1..100" 99.01 (Stats.p99 hundred);
  Alcotest.(check (float 1e-9)) "p25 interpolates" 1.75 (Stats.percentile 25.0 [ 1.0; 2.0; 3.0; 4.0 ]);
  (* Total float order: negatives, mixed signs and zero must sort
     numerically (the sort uses [Float.compare], not the polymorphic
     one). *)
  Alcotest.(check (float 1e-9)) "median negatives" (-2.0) (Stats.median [ -1.0; -3.0; -2.0 ]);
  Alcotest.(check (float 1e-9)) "p0 mixed signs" (-7.5) (Stats.percentile 0.0 [ 2.0; -7.5; 0.0 ]);
  Alcotest.(check (float 1e-9)) "p100 mixed signs" 2.0 (Stats.percentile 100.0 [ 2.0; -7.5; 0.0 ]);
  Alcotest.check_raises "empty input" (Invalid_argument "Stats.percentile: empty")
    (fun () -> ignore (Stats.p50 []));
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Stats.percentile: p outside [0, 100]") (fun () ->
      ignore (Stats.percentile 101.0 [ 1.0 ]))

let test_percentile_bounds =
  QCheck.Test.make ~name:"percentile within min..max" ~count:300
    QCheck.(pair (float_range 0.0 100.0) (list_of_size (QCheck.Gen.int_range 1 40) (float_range (-100.0) 100.0)))
    (fun (p, xs) ->
      let v = Stats.percentile p xs in
      let lo = List.fold_left min infinity xs and hi = List.fold_left max neg_infinity xs in
      v >= lo -. 1e-9 && v <= hi +. 1e-9)

let test_p90 () =
  (* Type-7 on 1..100: rank = 0.9 * 99 = 89.1. *)
  let hundred = List.init 100 (fun i -> float_of_int (i + 1)) in
  Alcotest.(check (float 1e-9)) "p90 of 1..100" 90.1 (Stats.p90 hundred);
  Alcotest.(check (float 1e-9)) "singleton" 7.0 (Stats.p90 [ 7.0 ]);
  Alcotest.(check (float 1e-9)) "all equal" 3.0 (Stats.p90 [ 3.0; 3.0; 3.0 ]);
  (* p50 <= p90 <= p99 on anything. *)
  let xs = [ 5.0; 1.0; 9.0; 2.0; 8.0; 3.0 ] in
  Alcotest.(check bool) "ordered with p50/p99" true
    (Stats.p50 xs <= Stats.p90 xs && Stats.p90 xs <= Stats.p99 xs);
  Alcotest.check_raises "empty input" (Invalid_argument "Stats.percentile: empty")
    (fun () -> ignore (Stats.p90 []))

let test_histogram () =
  (* Four equal-width buckets over [0, 8]: closed on the right, so 8
     lands in the last bucket, not in overflow. *)
  let h = Stats.histogram ~bins:4 ~lo:0.0 ~hi:8.0 [ 0.0; 1.0; 2.0; 3.9; 4.0; 7.9; 8.0 ] in
  Alcotest.(check (array int)) "counts" [| 2; 2; 1; 2 |] h.Stats.h_counts;
  Alcotest.(check int) "no underflow" 0 h.Stats.h_underflow;
  Alcotest.(check int) "no overflow" 0 h.Stats.h_overflow;
  Alcotest.(check int) "total" 7 h.Stats.h_total;
  (* Out-of-range values land in the under/overflow bins, NaN under. *)
  let h = Stats.histogram ~bins:2 ~lo:0.0 ~hi:1.0 [ -1.0; 0.5; 2.0; Float.nan ] in
  Alcotest.(check int) "underflow counts NaN too" 2 h.Stats.h_underflow;
  Alcotest.(check int) "overflow" 1 h.Stats.h_overflow;
  Alcotest.(check int) "total counts everything" 4 h.Stats.h_total;
  (* Empty input: all-zero counts, the range intact. *)
  let h = Stats.histogram ~bins:3 ~lo:0.0 ~hi:3.0 [] in
  Alcotest.(check (array int)) "empty counts" [| 0; 0; 0 |] h.Stats.h_counts;
  Alcotest.(check int) "empty total" 0 h.Stats.h_total;
  (* Singleton. *)
  let h = Stats.histogram ~bins:2 ~lo:5.0 ~hi:5.0 [ 5.0 ] in
  Alcotest.(check (array int)) "singleton in bucket 0" [| 1; 0 |] h.Stats.h_counts;
  (* All equal, degenerate lo = hi: everything equal to it in bucket 0. *)
  let h = Stats.histogram ~bins:4 ~lo:2.0 ~hi:2.0 [ 2.0; 2.0; 2.0 ] in
  Alcotest.(check (array int)) "all-equal in bucket 0" [| 3; 0; 0; 0 |] h.Stats.h_counts;
  Alcotest.(check int) "all-equal total" 3 h.Stats.h_total;
  (* Invalid shapes. *)
  Alcotest.check_raises "bins < 1" (Invalid_argument "Stats.histogram: bins must be >= 1")
    (fun () -> ignore (Stats.histogram ~bins:0 ~lo:0.0 ~hi:1.0 []));
  Alcotest.check_raises "lo > hi" (Invalid_argument "Stats.histogram: need lo <= hi")
    (fun () -> ignore (Stats.histogram ~lo:2.0 ~hi:1.0 []));
  (* The rendering mentions every bucket boundary. *)
  let h = Stats.histogram ~bins:2 ~lo:0.0 ~hi:4.0 [ 1.0; 3.0 ] in
  let s = Stats.histogram_to_string h in
  Alcotest.(check bool) "rendering has the buckets" true
    (String.length s > 0 && String.contains s '[')

let test_histogram_conserves =
  QCheck.Test.make ~name:"histogram counts every observation" ~count:300
    QCheck.(pair (int_range 1 8) (list_of_size (QCheck.Gen.int_range 0 50) (float_range (-50.0) 50.0)))
    (fun (bins, xs) ->
      let lo = List.fold_left min 0.0 xs and hi = List.fold_left max 0.0 xs in
      let h = Stats.histogram ~bins ~lo ~hi xs in
      Array.fold_left ( + ) 0 h.Stats.h_counts + h.Stats.h_underflow + h.Stats.h_overflow
      = List.length xs
      && h.Stats.h_total = List.length xs)

let test_time_us () =
  let (), us = Stats.time_us (fun () -> ignore (Sys.opaque_identity (Array.make 1000 0))) in
  Alcotest.(check bool) "non-negative" true (us >= 0.0)

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed-sensitive" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "gaussian-moments" `Quick test_gaussian_moments;
          QCheck_alcotest.to_alcotest test_rng_int_range;
          QCheck_alcotest.to_alcotest test_rng_uniform_range;
          QCheck_alcotest.to_alcotest test_shuffle_permutation;
        ] );
      ( "table+stats",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "percentiles" `Quick test_percentiles;
          QCheck_alcotest.to_alcotest test_percentile_bounds;
          Alcotest.test_case "p90" `Quick test_p90;
          Alcotest.test_case "histogram" `Quick test_histogram;
          QCheck_alcotest.to_alcotest test_histogram_conserves;
          Alcotest.test_case "time_us" `Quick test_time_us;
        ] );
    ]
