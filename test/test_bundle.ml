(* The AOT bundle codec and bundle-backed serving.

   The format tests mirror the checkpoint hardening posture: every
   length is validated against the bytes remaining and the content
   digest is verified before anything reaches [Marshal], so a
   truncated, bit-flipped or wrong-version file must die with a typed
   [Bundle.Error] — never a crash, never a giant allocation, never a
   deserialized corrupt artifact.  The serving tests pin the two
   contracts [cortex serve --bundle] stands on: results are bitwise
   identical to a freshly compiled engine, and zero lowering passes run
   at serve time (counted via the "lower" wall spans the compiler
   emits). *)

open Cortex
module M = Models.Common
module Q = QCheck

let backend = Backend.gpu
let spec = Models.Tree_fc.spec ~vocab:12 ~hidden:4 ()

let compiled =
  lazy (Runtime.compile ~options:(Runtime.options_for spec) spec.M.program)

let weights = lazy (Checkpoint.of_spec spec ~seed:5)

let make_bundle ?config ?plans ?weights:(w = Lazy.force weights) () =
  Bundle.create ?config ?plans ~weights:w ~model:"TreeFC" ~size:"small"
    ~backend:backend.Backend.short (Lazy.force compiled)

(* ---------- round trips ---------- *)

let test_roundtrip () =
  let plans =
    [
      {
        Bundle.bp_backend = "GPU";
        bp_bucket = 5;
        bp_plan = [];
        bp_default_us = 12.5;
        bp_tuned_us = 12.5;
      };
    ]
  in
  let b = make_bundle ~config:"max_batch=4" ~plans () in
  let d = Bundle.decode (Bundle.encode b) in
  Alcotest.(check string) "digest" b.Bundle.b_digest d.Bundle.b_digest;
  Alcotest.(check string) "model" "TreeFC" d.Bundle.b_model;
  Alcotest.(check string) "size" "small" d.Bundle.b_size;
  Alcotest.(check string) "backend" "GPU" d.Bundle.b_backend;
  Alcotest.(check string) "config" "max_batch=4" d.Bundle.b_config;
  Alcotest.(check int) "plans survive" 1 (List.length d.Bundle.b_plans);
  let p = List.hd d.Bundle.b_plans in
  Alcotest.(check string) "plan text" "default" (Schedule.plan_to_string p.Bundle.bp_plan);
  Alcotest.(check int) "plan bucket" 5 p.Bundle.bp_bucket;
  Alcotest.(check bool) "options survive"
    true
    (Lower.options_to_string b.Bundle.b_options = Lower.options_to_string d.Bundle.b_options);
  (* The compiled program survives the Marshal round trip verbatim. *)
  Alcotest.(check string) "program text"
    (Ir.program_to_string (Lazy.force compiled).Lower.prog)
    (Ir.program_to_string d.Bundle.b_compiled.Lower.prog);
  (* Weights: same names, shapes and bits. *)
  List.iter2
    (fun (n0, t0) (n1, t1) ->
      Alcotest.(check string) "weight name" n0 n1;
      Alcotest.(check (float 0.0)) ("weight bits " ^ n0) 0.0 (Tensor.max_abs_diff t0 t1))
    (Lazy.force weights) d.Bundle.b_weights;
  (* Re-encoding the decoded bundle is byte-identical: the digest the
     CLI prints is stable across builds. *)
  Alcotest.(check bool) "re-encode is stable" true (Bundle.encode d = Bundle.encode b)

let name_gen =
  Q.Gen.(string_size ~gen:(oneofl [ 'a'; 'b'; 'c'; 'w'; 'x' ]) (1 -- 6))

let config_gen =
  Q.Gen.(string_size ~gen:(oneofl [ 'k'; 'v'; '='; '_'; '1'; ';'; ',' ]) (0 -- 24))

let arb_table =
  let open Q.Gen in
  let tensor = map (fun dims -> Tensor.zeros (Array.of_list dims)) (list_size (1 -- 3) (1 -- 5)) in
  Q.make
    ~print:(fun (cfg, tbl) ->
      Printf.sprintf "config=%S weights=[%s]" cfg
        (String.concat ";"
           (List.map
              (fun (n, (t : Tensor.t)) ->
                Printf.sprintf "%s[%s]" n
                  (String.concat "," (List.map string_of_int (Array.to_list t.Tensor.shape))))
              tbl)))
    (pair config_gen (list_size (0 -- 5) (pair name_gen tensor)))

let prop_roundtrip =
  Q.Test.make ~count:30 ~name:"encode/decode round-trips config and weights" arb_table
    (fun (config, table) ->
      let b = make_bundle ~config ~weights:table () in
      let d = Bundle.decode (Bundle.encode b) in
      d.Bundle.b_digest = b.Bundle.b_digest
      && d.Bundle.b_config = config
      && List.length d.Bundle.b_weights = List.length table
      && List.for_all2
           (fun (n0, (t0 : Tensor.t)) (n1, (t1 : Tensor.t)) ->
             n0 = n1 && t0.Tensor.shape = t1.Tensor.shape)
           table d.Bundle.b_weights)

(* ---------- adversarial files ---------- *)

let typed_error what bytes =
  match Bundle.decode bytes with
  | (_ : Bundle.t) -> Alcotest.failf "%s: decode accepted corrupt bytes" what
  | exception Bundle.Error _ -> ()
  | exception e ->
    Alcotest.failf "%s: untyped exception %s" what (Printexc.to_string e)

let test_truncation () =
  let enc = Bundle.encode (make_bundle ()) in
  let n = String.length enc in
  (* Every header-region prefix, then a spread through the payloads. *)
  let cuts =
    List.init 64 (fun i -> i) @ List.init 20 (fun i -> 64 + (i * (n - 65) / 20))
  in
  List.iter
    (fun cut ->
      if cut < n then typed_error (Printf.sprintf "cut at %d" cut) (String.sub enc 0 cut))
    cuts

let test_bit_flip () =
  let enc = Bundle.encode (make_bundle ()) in
  let flip i =
    let b = Bytes.of_string enc in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
    Bytes.to_string b
  in
  (* A flip in the payload region must be a digest mismatch
     specifically — it is caught before Marshal ever runs. *)
  (match Bundle.decode (flip (String.length enc - 3)) with
   | (_ : Bundle.t) -> Alcotest.fail "payload flip accepted"
   | exception Bundle.Error (Bundle.Digest_mismatch _) -> ()
   | exception Bundle.Error e ->
     Alcotest.failf "payload flip: expected digest mismatch, got %s" (Bundle.error_to_string e));
  (* Flips anywhere must stay typed. *)
  List.iter
    (fun i -> typed_error (Printf.sprintf "flip at %d" i) (flip i))
    [ 0; 7; 8; 16; 24; 32; 40; String.length enc / 2 ]

let test_wrong_magic_and_version () =
  let enc = Bundle.encode (make_bundle ()) in
  (match Bundle.decode ("XORTEXB1" ^ String.sub enc 8 (String.length enc - 8)) with
   | (_ : Bundle.t) -> Alcotest.fail "bad magic accepted"
   | exception Bundle.Error (Bundle.Bad_magic _) -> ());
  let bumped = Bytes.of_string enc in
  Bytes.set bumped 8 '\x09';
  match Bundle.decode (Bytes.to_string bumped) with
  | (_ : Bundle.t) -> Alcotest.fail "future version accepted"
  | exception Bundle.Error (Bundle.Unsupported_version 9) -> ()
  | exception Bundle.Error e ->
    Alcotest.failf "expected version error, got %s" (Bundle.error_to_string e)

(* ---------- serving from a bundle ---------- *)

let lower_count o =
  List.length
    (List.filter
       (fun (e : Chrome_trace.event) ->
         e.Chrome_trace.ev_name = "lower" && e.Chrome_trace.ev_ph = Chrome_trace.Begin)
       (Obs.events o))

let test_serving_bitwise_and_zero_lowering () =
  let b = Bundle.decode (Bundle.encode (make_bundle ())) in
  let structure = spec.M.dataset (Rng.create 9) ~batch:4 in
  let params = Checkpoint.resolver (Lazy.force weights) in
  let obs_fresh = Obs.create () in
  let fresh =
    Engine.of_spec ~config:(Engine.Config.make ~obs:obs_fresh ()) spec ~backend
  in
  Alcotest.(check bool) "fresh engine runs the lowering pipeline" true
    (lower_count obs_fresh >= 1);
  let obs_bundle = Obs.create () in
  let served =
    Engine.of_bundle
      ~config:(Engine.Config.make ~obs:obs_bundle ~params:(Bundle.resolver b) ())
      ~expect_model:"TreeFC" b ~backend
  in
  let fx = Engine.execute_one fresh ~params structure in
  let bx = Engine.execute_one served ~params:(Bundle.resolver b) structure in
  let out = List.hd spec.M.program.Ra.outputs in
  List.iter
    (fun root ->
      Alcotest.(check (float 0.0)) "bundle-served output is bitwise identical" 0.0
        (Tensor.max_abs_diff (Engine.state fx out root) (Engine.state bx out root)))
    structure.Structure.roots;
  (* A full serving drain through the bundle engine, then the pin: the
     artifact was installed as-is, zero lowering passes ran. *)
  ignore (Engine.submit_exn served structure);
  ignore (Engine.drain served);
  Alcotest.(check int) "zero lower spans at serve time" 0 (lower_count obs_bundle)

let test_mismatches_refused () =
  let b = make_bundle () in
  (match Engine.of_bundle b ~backend:Backend.arm with
   | (_ : Engine.t) -> Alcotest.fail "backend mismatch accepted"
   | exception Bundle.Error (Bundle.Backend_mismatch { bundle = "GPU"; requested = "ARM" }) -> ());
  (match Engine.of_bundle ~expect_model:"TreeLSTM" b ~backend with
   | (_ : Engine.t) -> Alcotest.fail "model mismatch accepted"
   | exception Bundle.Error (Bundle.Model_mismatch { bundle = "TreeFC"; requested = "TreeLSTM" }) ->
     ());
  (* An embedded config that passes the digest check but does not parse
     is a typed corrupt-section error, never a silent Config.default. *)
  match Engine.of_bundle (make_bundle ~config:"no_such_key=1" ()) ~backend with
  | (_ : Engine.t) -> Alcotest.fail "malformed embedded config accepted"
  | exception Bundle.Error (Bundle.Corrupt_section { section = "config"; _ }) -> ()

let test_preloaded_plans_hit () =
  (* A tuned plan riding in the bundle means the first window of its
     (backend, size-class) is a plan-cache hit: no search runs. *)
  let structure = spec.M.dataset (Rng.create 9) ~batch:4 in
  let lin = Linearizer.run structure in
  let plans =
    match Tuner.tune_loops ~budget:4 (Lazy.force compiled) ~backend lin with
    | [] -> Alcotest.fail "tuner returned nothing"
    | (plan, report) :: _ ->
      [
        {
          Bundle.bp_backend = backend.Backend.short;
          bp_bucket = Dispatch.size_bucket lin.Linearizer.num_nodes;
          bp_plan = plan;
          bp_default_us = report.Runtime.latency.Backend.total_us;
          bp_tuned_us = report.Runtime.latency.Backend.total_us;
        };
      ]
  in
  let b = Bundle.decode (Bundle.encode (make_bundle ~plans ())) in
  let served = Engine.of_bundle b ~backend in
  ignore (Engine.submit_exn served structure);
  let s = Engine.drain served in
  match s.Engine.plan_cache with
  | None -> Alcotest.fail "no plan cache despite bundled plans"
  | Some pc ->
    Alcotest.(check bool) "first window hits the preloaded class" true (pc.Plan_cache.pc_hits >= 1)

(* ---------- Engine.Config text form ---------- *)

let test_config_roundtrip () =
  let faults =
    match Fault.parse "transient@*:0.05,0,1e6;straggler@0:3,2000,8000" with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let c =
    Engine.Config.make
      ~policy:{ Engine.max_batch = 4; max_wait_us = 150.0; bucketing = Engine.By_size }
      ~dispatch:Dispatch.Least_loaded
      ~devices:[ Backend.gpu; Backend.arm ]
      ~cache_capacity:32 ~queue_cap:64 ~degrade_watermark:48 ~faults ~seed:7
      ~autotune:true ~tune_budget:9 ()
  in
  let text = Engine.Config.to_string c in
  (match Engine.Config.of_string text with
   | Error e -> Alcotest.fail e
   | Ok c2 ->
     Alcotest.(check string) "to_string . of_string is a fixed point" text
       (Engine.Config.to_string c2));
  (* The tab-joined single-line form a bundle manifest embeds parses
     identically. *)
  let one_line = String.concat "\t" (String.split_on_char '\n' text) in
  match Engine.Config.of_string one_line with
  | Error e -> Alcotest.fail e
  | Ok c3 ->
    Alcotest.(check string) "tab-joined form parses the same" text
      (Engine.Config.to_string c3)

let test_config_of_string_errors () =
  let bad s =
    match Engine.Config.of_string s with
    | Ok _ -> Alcotest.failf "accepted %S" s
    | Error _ -> ()
  in
  bad "no_such_key=1";
  bad "max_batch=frog";
  bad "devices=GPU,Q36";
  bad "bucketing=diagonal";
  (match Engine.Config.of_string "# comment\n\nmax_batch=3" with
   | Error e -> Alcotest.fail e
   | Ok c ->
     Alcotest.(check int) "comments and blanks skipped" 3
       c.Engine.Config.dispatch.Engine.Config.batching.Engine.max_batch);
  match Engine.Config.of_string "" with
  | Error e -> Alcotest.fail e
  | Ok c ->
    Alcotest.(check string) "empty text is the default config"
      (Engine.Config.to_string Engine.Config.default)
      (Engine.Config.to_string c)

(* ---------- checkpoint manifests ---------- *)

let test_checkpoint_manifest () =
  let w = Lazy.force weights in
  let m = Checkpoint.manifest_of_string (Checkpoint.to_string w) in
  Alcotest.(check int) "entry per tensor" (List.length w) (List.length m);
  List.iter2
    (fun (n, (t : Tensor.t)) (mn, dims) ->
      Alcotest.(check string) "name" n mn;
      Alcotest.(check (array int)) ("shape of " ^ n) t.Tensor.shape dims)
    w m;
  (* And the file-channel reader, payloads seek-skipped. *)
  let path = Filename.temp_file "cortex_ckpt" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Checkpoint.save path w;
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let fm = Checkpoint.read_manifest ic in
          Alcotest.(check int) "file manifest matches" (List.length m) (List.length fm)))

let test_inspect_file () =
  let b = make_bundle ~config:"max_batch=4" () in
  let path = Filename.temp_file "cortex_bundle" ".cbz" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Bundle.save path b;
      let info = Bundle.inspect path in
      Alcotest.(check string) "digest" b.Bundle.b_digest info.Bundle.i_digest;
      Alcotest.(check int) "weights summarized" (List.length (Lazy.force weights))
        (List.length info.Bundle.i_weights);
      Alcotest.(check bool) "manifest carries the model" true
        (List.mem_assoc "model" info.Bundle.i_manifest);
      (* inspect validates: a flipped byte in the file is refused. *)
      let ic = open_in_bin path in
      let raw = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let oc = open_out_bin path in
      output_string oc (String.sub raw 0 (String.length raw - 3));
      output_char oc 'Z';
      output_string oc (String.sub raw (String.length raw - 2) 2);
      close_out oc;
      match Bundle.inspect path with
      | (_ : Bundle.info) -> Alcotest.fail "inspect accepted a corrupt file"
      | exception Bundle.Error (Bundle.Digest_mismatch _) -> ())

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "bundle"
    [
      ("roundtrip", [ Alcotest.test_case "fields" `Quick test_roundtrip; q prop_roundtrip ]);
      ( "adversarial",
        [
          Alcotest.test_case "truncation" `Quick test_truncation;
          Alcotest.test_case "bit-flip" `Quick test_bit_flip;
          Alcotest.test_case "magic-version" `Quick test_wrong_magic_and_version;
        ] );
      ( "serving",
        [
          Alcotest.test_case "bitwise-and-zero-lowering" `Quick
            test_serving_bitwise_and_zero_lowering;
          Alcotest.test_case "mismatches" `Quick test_mismatches_refused;
          Alcotest.test_case "preloaded-plans" `Quick test_preloaded_plans_hit;
        ] );
      ( "config",
        [
          Alcotest.test_case "roundtrip" `Quick test_config_roundtrip;
          Alcotest.test_case "errors" `Quick test_config_of_string_errors;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "manifest" `Quick test_checkpoint_manifest;
          Alcotest.test_case "inspect" `Quick test_inspect_file;
        ] );
    ]
