(* The serving engine: forest linearization, cross-request equivalence,
   input validation, batching policies and the cross-request batching
   payoff (serve bench's acceptance shape). *)

open Cortex
module M = Models.Common

let gpu = Backend.gpu

let sst_trees rng ~vocab n = List.init n (fun _ -> Gen.sst_tree rng ~vocab ())

(* ---------- forest linearization ---------- *)

let test_run_forest_invariants () =
  let rng = Rng.create 7 in
  let structures = sst_trees rng ~vocab:40 5 in
  let f = Linearizer.run_forest structures in
  Linearizer.check_forest f;
  Alcotest.(check int) "forest covers all requests"
    (List.fold_left (fun acc s -> acc + Structure.num_nodes s) 0 structures)
    f.Linearizer.lin.Linearizer.num_nodes;
  (* Per-level batches of the forest are the unions of the requests'
     levels: each request's slice is contiguous and they tile the
     level's batch. *)
  Array.iteri
    (fun level (first, len) ->
      let covered =
        Array.fold_left
          (fun acc (span : Linearizer.span) ->
            if level < Array.length span.Linearizer.span_levels then
              acc + snd span.Linearizer.span_levels.(level)
            else acc)
          0 f.Linearizer.spans
      in
      Alcotest.(check int)
        (Printf.sprintf "level %d tiled by request ranges" level)
        len covered;
      Array.iter
        (fun (span : Linearizer.span) ->
          if level < Array.length span.Linearizer.span_levels then begin
            let b, l = span.Linearizer.span_levels.(level) in
            Alcotest.(check bool) "range within level batch" true
              (l = 0 || (b >= first && b + l <= first + len))
          end)
        f.Linearizer.spans)
    f.Linearizer.lin.Linearizer.batches

let test_forest_of_one_matches_run () =
  let rng = Rng.create 3 in
  let s = Gen.sst_tree rng ~vocab:30 () in
  let f = Linearizer.run_forest [ s ] in
  let lone = Linearizer.run s in
  Alcotest.(check int) "same nodes" lone.Linearizer.num_nodes
    f.Linearizer.lin.Linearizer.num_nodes;
  Alcotest.(check int) "same batches"
    (Array.length lone.Linearizer.batches)
    (Array.length f.Linearizer.lin.Linearizer.batches)

(* ---------- cross-request equivalence (bitwise) ---------- *)

let check_forest_equivalence (spec : M.t) structures seed =
  let params = spec.M.init_params (Rng.create seed) in
  let engine = Engine.of_spec spec ~backend:gpu in
  let fx = Engine.execute engine ~params structures in
  let compiled = Runtime.compile ~options:(Runtime.options_for spec) spec.M.program in
  List.iteri
    (fun k s ->
      let solo = Runtime.execute compiled ~params s in
      List.iter
        (fun (st : Ra.state) ->
          Array.iter
            (fun (node : Node.t) ->
              let batched = Engine.state fx ~request:k st.Ra.st_name node in
              let alone = Runtime.state solo st.Ra.st_name node in
              Alcotest.(check bool)
                (Printf.sprintf "seed %d request %d node %d state %s bitwise equal"
                   seed k node.Node.id st.Ra.st_name)
                true
                (Tensor.max_abs_diff batched alone = 0.0))
            s.Structure.nodes)
        spec.M.program.Ra.states)
    structures

let test_forest_equivalence_treelstm () =
  List.iter
    (fun seed ->
      let rng = Rng.create seed in
      let spec = Models.Tree_lstm.spec ~vocab:50 ~hidden:8 () in
      check_forest_equivalence spec (sst_trees rng ~vocab:50 4) (seed + 100))
    [ 1; 2; 3 ]

let test_forest_equivalence_dagrnn () =
  List.iter
    (fun seed ->
      let spec = Models.Dag_rnn.spec ~rows:5 ~cols:5 ~hidden:6 () in
      let structures =
        [
          Gen.grid_dag ~rows:5 ~cols:5;
          Gen.grid_dag ~rows:3 ~cols:5;
          Gen.grid_dag ~rows:4 ~cols:4;
        ]
      in
      check_forest_equivalence spec structures seed)
    [ 11; 12 ]

(* ---------- input validation ---------- *)

let tree_model max_children =
  let open Ra in
  {
    name = "serve_test_tree";
    kind = Structure.Tree;
    max_children;
    params = [ ("Emb", [ 21; 4 ]); ("U", [ 4; 4 ]); ("b", [ 4 ]) ];
    rec_ops =
      [
        op "cs" ~axes:[ ("i", 4) ] (ChildSum (ChildState ("h", Current, [ IAxis "i" ])));
        op "h" ~axes:[ ("i", 4) ]
          (tanh_
             (Param ("Emb", [ IPayload; IAxis "i" ])
             + Sum ("j", 4, Param ("U", [ IAxis "i"; IAxis "j" ]) * Temp ("cs", [ IAxis "j" ]))
             + Param ("b", [ IAxis "i" ])));
      ];
    leaf_ops = None;
    states = [ { st_name = "h"; st_op = "h"; st_init = Zero } ];
    outputs = [ "h" ];
  }

let ternary_tree () =
  (* One root with three leaf children: fanout 3, declared honestly. *)
  let b = Node.builder () in
  let leaves = List.init 3 (fun i -> Node.make b ~payload:i []) in
  let root = Node.make b ~payload:20 leaves in
  Structure.create ~kind:Structure.Tree ~max_children:3 [ root ]

let shared_dag () =
  (* A diamond: the shared leaf forces kind Dag. *)
  let b = Node.builder () in
  let shared = Node.make b ~payload:1 [] in
  let l = Node.make b ~payload:2 [ shared ] in
  let r = Node.make b ~payload:3 [ shared ] in
  let root = Node.make b ~payload:4 [ l; r ] in
  Structure.create ~kind:Structure.Dag ~max_children:2 [ root ]

let test_submit_rejects_fanout () =
  let engine = Engine.create ~model:(tree_model 2) ~backend:gpu () in
  match Engine.submit engine (ternary_tree ()) with
  | Ok _ -> Alcotest.fail "fanout-3 request accepted by a 2-ary model"
  | Error (Engine.Rejected (Linearizer.Fanout_exceeded f)) ->
    Alcotest.(check int) "offending arity" 3 f.arity;
    Alcotest.(check int) "model bound" 2 f.max_children;
    Alcotest.(check int) "queue untouched" 0 (Engine.pending engine)
  | Error e -> Alcotest.failf "wrong error: %s" (Engine.error_to_string e)

let test_submit_rejects_kind () =
  (* A DAG's shared subtree re-enters a tree traversal — the cycle-like
     malformation a tree model must refuse. *)
  let engine = Engine.create ~model:(tree_model 2) ~backend:gpu () in
  match Engine.submit engine (shared_dag ()) with
  | Ok _ -> Alcotest.fail "dag accepted by a tree model"
  | Error (Engine.Kind_mismatch { expected; got }) ->
    Alcotest.(check bool) "expected tree" true (expected = Structure.Tree);
    Alcotest.(check bool) "got dag" true (got = Structure.Dag)
  | Error e -> Alcotest.failf "wrong error: %s" (Engine.error_to_string e)

let test_cycle_unconstructible () =
  (* An actual cycle cannot be built — children are fixed at node
     construction — and the nearest malformation, a shared subtree
     declared as a tree (a node with two parents, which would re-enter
     the traversal like a cycle does), is rejected at construction, so
     the engine never sees one. *)
  let b = Node.builder () in
  let shared = Node.make b ~payload:0 [] in
  let l = Node.make b ~payload:1 [ shared ] in
  let r = Node.make b ~payload:2 [ shared ] in
  let root = Node.make b ~payload:3 [ l; r ] in
  try
    ignore (Structure.create ~kind:Structure.Tree ~max_children:2 [ root ]);
    Alcotest.fail "malformed structure accepted"
  with Structure.Invalid _ -> ()

let test_linearizer_rejects_fanout () =
  let s = ternary_tree () in
  (try
     ignore (Linearizer.run ~max_children:2 s);
     Alcotest.fail "Linearizer.run accepted fanout 3 under a bound of 2"
   with Linearizer.Rejected (Linearizer.Fanout_exceeded _) -> ());
  (* and with the bound satisfied it must succeed *)
  Linearizer.check (Linearizer.run ~max_children:3 s)

let test_linearizer_rejects_forest_shapes () =
  (try
     ignore (Linearizer.run_forest []);
     Alcotest.fail "empty forest accepted"
   with Linearizer.Rejected Linearizer.Empty_forest -> ());
  let rng = Rng.create 5 in
  let tree = Gen.sst_tree rng ~vocab:10 () in
  let seq = Gen.sequence rng ~vocab:10 ~len:4 () in
  try
    ignore (Linearizer.run_forest [ tree; seq ]);
    Alcotest.fail "mixed kinds accepted"
  with Linearizer.Rejected (Linearizer.Mixed_kinds _) -> ()

(* ---------- batching policies ---------- *)

let small_spec = Models.Tree_lstm.spec ~vocab:50 ~hidden:8 ()

let test_policy_max_batch () =
  let policy = { Engine.default_policy with Engine.max_batch = 4 } in
  let engine = Engine.of_spec ~config:(Engine.Config.make ~policy ()) small_spec ~backend:gpu in
  let rng = Rng.create 21 in
  List.iter
    (fun s -> ignore (Engine.submit_exn engine s))
    (sst_trees rng ~vocab:50 10);
  let s = Engine.drain engine in
  Alcotest.(check int) "all served" 10 s.Engine.aggregate.Engine.num_requests;
  Alcotest.(check int) "windows of <= 4" 3 s.Engine.aggregate.Engine.num_windows;
  List.iter
    (fun (w : Engine.window_report) ->
      Alcotest.(check bool) "window size bounded" true (w.Engine.wr_size <= 4))
    s.Engine.windows;
  Alcotest.(check int) "queue drained" 0 (Engine.pending engine)

let test_policy_max_wait () =
  let policy =
    { Engine.max_batch = 100; max_wait_us = 100.0; bucketing = Engine.Fifo }
  in
  let engine = Engine.of_spec ~config:(Engine.Config.make ~policy ()) small_spec ~backend:gpu in
  let rng = Rng.create 22 in
  (* Two bursts 10 ms apart: the wait deadline must split them. *)
  List.iteri
    (fun i s ->
      let arrival_us = if i < 3 then float_of_int i else 10_000.0 +. float_of_int i in
      ignore (Engine.submit_exn engine ~arrival_us s))
    (sst_trees rng ~vocab:50 6);
  let s = Engine.drain engine in
  Alcotest.(check int) "two windows" 2 s.Engine.aggregate.Engine.num_windows;
  (* Queueing delay is bounded by the wait deadline for the first-burst
     requests (device starts idle). *)
  List.iter
    (fun (r : Engine.request_report) ->
      if r.Engine.rr_window = 0 then
        Alcotest.(check bool) "queue <= max_wait" true (r.Engine.rr_queue_us <= 100.0))
    s.Engine.requests

let test_policy_bucketing () =
  let rng = Rng.create 23 in
  let small = List.init 6 (fun _ -> Gen.sst_tree rng ~vocab:50 ~len:4 ()) in
  let big = List.init 6 (fun _ -> Gen.sst_tree rng ~vocab:50 ~len:40 ()) in
  (* Interleave small and big requests. *)
  let interleaved = List.concat (List.map2 (fun a b -> [ a; b ]) small big) in
  let policy =
    { Engine.max_batch = 6; max_wait_us = 1.0e9; bucketing = Engine.By_size }
  in
  let engine = Engine.of_spec ~config:(Engine.Config.make ~policy ()) small_spec ~backend:gpu in
  List.iter (fun s -> ignore (Engine.submit_exn engine s)) interleaved;
  let s = Engine.drain engine in
  Alcotest.(check int) "all served" 12 s.Engine.aggregate.Engine.num_requests;
  (* Every window is size-homogeneous: max/min node counts within a
     window stay within the power-of-two bucket (ratio < 4). *)
  List.iter
    (fun (w : Engine.window_report) ->
      let members =
        List.filter (fun (r : Engine.request_report) -> r.Engine.rr_window = w.Engine.wr_index) s.Engine.requests
      in
      let nodes = List.map (fun (r : Engine.request_report) -> r.Engine.rr_nodes) members in
      let lo = List.fold_left min max_int nodes and hi = List.fold_left max 0 nodes in
      Alcotest.(check bool)
        (Printf.sprintf "window %d homogeneous (%d..%d nodes)" w.Engine.wr_index lo hi)
        true
        (hi < 4 * lo))
    s.Engine.windows

let test_empty_drain () =
  let engine = Engine.of_spec small_spec ~backend:gpu in
  let s = Engine.drain engine in
  Alcotest.(check int) "no requests" 0 s.Engine.aggregate.Engine.num_requests;
  Alcotest.(check int) "no windows" 0 s.Engine.aggregate.Engine.num_windows

let test_run_one_matches_runtime () =
  let spec = Models.Catalog.get "TreeLSTM" Models.Catalog.Small in
  let structure = spec.M.dataset (Rng.create 31) ~batch:4 in
  let engine = Engine.of_spec spec ~backend:gpu in
  let via_engine = Engine.run_one engine structure in
  let compiled = Runtime.compile ~options:(Runtime.options_for spec) spec.M.program in
  let via_runtime = Runtime.simulate compiled ~backend:gpu structure in
  (* The device-side pricing is deterministic; only the measured host
     linearization wall clock may differ. *)
  Alcotest.(check (float 1e-9)) "same device latency"
    via_runtime.Runtime.latency.Backend.total_us
    via_engine.Runtime.latency.Backend.total_us;
  Alcotest.(check int) "same nodes" via_runtime.Runtime.num_nodes
    via_engine.Runtime.num_nodes

(* ---------- window-formation edge cases ---------- *)

let submit_at engine arrivals =
  let rng = Rng.create 51 in
  List.iter
    (fun arrival_us ->
      ignore (Engine.submit_exn engine ~arrival_us (Gen.sst_tree rng ~vocab:50 ~len:4 ())))
    arrivals

let test_arrival_exactly_at_deadline_joins () =
  (* The join condition is [arrival > first + max_wait]: a request
     landing exactly on the deadline still makes the window. *)
  let policy = { Engine.max_batch = 100; max_wait_us = 100.0; bucketing = Engine.Fifo } in
  let engine = Engine.of_spec ~config:(Engine.Config.make ~policy ()) small_spec ~backend:gpu in
  submit_at engine [ 0.0; 100.0 ];
  let s = Engine.drain engine in
  Alcotest.(check int) "exactly-at-deadline joins" 1 s.Engine.aggregate.Engine.num_windows;
  let engine = Engine.of_spec ~config:(Engine.Config.make ~policy ()) small_spec ~backend:gpu in
  submit_at engine [ 0.0; 100.5 ];
  let s = Engine.drain engine in
  Alcotest.(check int) "past-deadline splits" 2 s.Engine.aggregate.Engine.num_windows

let test_max_batch_one () =
  let policy = { Engine.max_batch = 1; max_wait_us = 1.0e9; bucketing = Engine.Fifo } in
  let engine = Engine.of_spec ~config:(Engine.Config.make ~policy ()) small_spec ~backend:gpu in
  submit_at engine [ 0.0; 10.0; 20.0; 30.0; 40.0 ];
  let s = Engine.drain engine in
  Alcotest.(check int) "one window per request" 5 s.Engine.aggregate.Engine.num_windows;
  List.iter
    (fun (w : Engine.window_report) ->
      Alcotest.(check int) "singleton window" 1 w.Engine.wr_size)
    s.Engine.windows;
  (* A full (here: size-1) window is ready at its last member's arrival,
     and the device starts idle — the first request never queues. *)
  let r0 = List.hd s.Engine.requests in
  Alcotest.(check (float 1e-9)) "first request dispatches on arrival" 0.0
    r0.Engine.rr_queue_us

let test_simultaneous_arrivals () =
  let policy = { Engine.max_batch = 3; max_wait_us = 1.0e9; bucketing = Engine.Fifo } in
  let engine = Engine.of_spec ~config:(Engine.Config.make ~policy ()) small_spec ~backend:gpu in
  submit_at engine [ 42.0; 42.0; 42.0; 42.0; 42.0 ];
  let s = Engine.drain engine in
  Alcotest.(check int) "two windows" 2 s.Engine.aggregate.Engine.num_windows;
  Alcotest.(check (list int)) "sizes 3 then 2" [ 3; 2 ]
    (List.map (fun (w : Engine.window_report) -> w.Engine.wr_size) s.Engine.windows);
  List.iter
    (fun (r : Engine.request_report) ->
      if r.Engine.rr_window = 0 then
        Alcotest.(check (float 1e-9)) "window 0 dispatches on arrival" 0.0
          r.Engine.rr_queue_us)
    s.Engine.requests

let test_drain_is_a_flush () =
  (* An explicit drain must not charge the trailing partial window the
     batching timer: it is ready at its last member's arrival. *)
  let policy = { Engine.max_batch = 100; max_wait_us = 1.0e9; bucketing = Engine.Fifo } in
  let engine = Engine.of_spec ~config:(Engine.Config.make ~policy ()) small_spec ~backend:gpu in
  submit_at engine [ 0.0; 10.0; 20.0 ];
  let s = Engine.drain engine in
  Alcotest.(check int) "one flushed window" 1 s.Engine.aggregate.Engine.num_windows;
  List.iter
    (fun (r : Engine.request_report) ->
      Alcotest.(check bool)
        (Printf.sprintf "queue %.1f bounded by the flush, not the timer"
           r.Engine.rr_queue_us)
        true
        (r.Engine.rr_queue_us <= 20.0))
    s.Engine.requests

let test_negative_arrivals () =
  (* Traces may use any epoch; a full window's ready time is its last
     member's arrival even when every arrival is negative (a [0.0] fold
     seed would silently pull the ready time to zero). *)
  let policy = { Engine.max_batch = 2; max_wait_us = 1.0e9; bucketing = Engine.Fifo } in
  let engine = Engine.of_spec ~config:(Engine.Config.make ~policy ()) small_spec ~backend:gpu in
  submit_at engine [ -100.0; -50.0 ];
  let s = Engine.drain engine in
  Alcotest.(check int) "one full window" 1 s.Engine.aggregate.Engine.num_windows;
  let r0 = List.hd s.Engine.requests in
  Alcotest.(check (float 1e-9)) "first member waits for the second only" 50.0
    r0.Engine.rr_queue_us

(* ---------- the shape-keyed linearization cache ---------- *)

let perfect_payloads seed = Gen.perfect_tree (Rng.create seed) ~vocab:50 ~height:3 ()

let test_cache_hits_in_drain () =
  let policy = { Engine.max_batch = 1; max_wait_us = 0.0; bucketing = Engine.Fifo } in
  let engine = Engine.of_spec ~config:(Engine.Config.make ~policy ()) small_spec ~backend:gpu in
  (* Six requests of identical topology, different payloads. *)
  List.iteri
    (fun i seed ->
      ignore (Engine.submit_exn engine ~arrival_us:(float_of_int i) (perfect_payloads seed)))
    [ 1; 2; 3; 4; 5; 6 ];
  let s = Engine.drain engine in
  let c = s.Engine.cache in
  Alcotest.(check int) "one miss" 1 c.Shape_cache.misses;
  Alcotest.(check int) "five hits" 5 c.Shape_cache.hits;
  Alcotest.(check int) "one shape cached" 1 c.Shape_cache.entries;
  let first = List.hd s.Engine.windows in
  Alcotest.(check bool) "first window is the cold run" false first.Engine.wr_cache_hit;
  List.iter
    (fun (w : Engine.window_report) ->
      if w.Engine.wr_index > 0 then begin
        Alcotest.(check bool)
          (Printf.sprintf "window %d served from cache" w.Engine.wr_index)
          true w.Engine.wr_cache_hit;
        (* Same shape, same device pricing — bit for bit. *)
        Alcotest.(check (float 0.0)) "identical device latency"
          first.Engine.wr_report.Runtime.latency.Backend.total_us
          w.Engine.wr_report.Runtime.latency.Backend.total_us
      end)
    s.Engine.windows

let test_cache_disabled () =
  let policy = { Engine.max_batch = 1; max_wait_us = 0.0; bucketing = Engine.Fifo } in
  let engine = Engine.of_spec ~config:(Engine.Config.make ~policy ~cache_capacity:0 ()) small_spec ~backend:gpu in
  List.iter
    (fun seed -> ignore (Engine.submit_exn engine (perfect_payloads seed)))
    [ 1; 2; 3 ];
  let s = Engine.drain engine in
  Alcotest.(check int) "no hits" 0 s.Engine.cache.Shape_cache.hits;
  Alcotest.(check int) "all misses" 3 s.Engine.cache.Shape_cache.misses;
  Alcotest.(check int) "nothing retained" 0 s.Engine.cache.Shape_cache.entries

let test_cache_hit_bitwise_equivalence () =
  (* A cache hit's numeric execution must be bitwise identical to a cold
     linearization of the same requests. *)
  let spec = Models.Tree_lstm.spec ~vocab:50 ~hidden:8 () in
  let params = spec.M.init_params (Rng.create 77) in
  let warm = Engine.of_spec spec ~backend:gpu in
  let cold = Engine.of_spec spec ~backend:gpu in
  (* Warm the cache with one shape, then execute different payloads of
     the same shape: the second call is a hit. *)
  ignore (Engine.execute warm ~params [ perfect_payloads 1; perfect_payloads 2 ]);
  let batch = [ perfect_payloads 3; perfect_payloads 4 ] in
  let via_hit = Engine.execute warm ~params batch in
  Alcotest.(check int) "second execute hit the cache" 1
    (Engine.cache_stats warm).Shape_cache.hits;
  let via_cold = Engine.execute cold ~params batch in
  Alcotest.(check int) "fresh engine ran cold" 0
    (Engine.cache_stats cold).Shape_cache.hits;
  List.iteri
    (fun k (s : Structure.t) ->
      List.iter
        (fun (st : Ra.state) ->
          Array.iter
            (fun (node : Node.t) ->
              Alcotest.(check bool)
                (Printf.sprintf "request %d node %d state %s bitwise equal" k
                   node.Node.id st.Ra.st_name)
                true
                (Tensor.max_abs_diff
                   (Engine.state via_hit ~request:k st.Ra.st_name node)
                   (Engine.state via_cold ~request:k st.Ra.st_name node)
                = 0.0))
            s.Structure.nodes)
        spec.M.program.Ra.states)
    batch

(* Edge coverage at the capacity boundaries: 0 (disabled), 1 (every new
   shape flushes the last) and the epoch-flush threshold (the table may
   sit exactly at capacity until the next new shape). *)

let shape height seed = [ Gen.perfect_tree (Rng.create seed) ~vocab:50 ~height () ]

let lookup cache s = snd (Shape_cache.find_or_linearize cache ~max_children:2 s)

let test_cache_unit_capacity_zero () =
  let cache = Shape_cache.create ~capacity:0 () in
  Alcotest.(check bool) "first lookup misses" false (lookup cache (shape 3 1));
  Alcotest.(check bool) "same shape misses again" false (lookup cache (shape 3 2));
  let st = Shape_cache.stats cache in
  Alcotest.(check int) "no hits" 0 st.Shape_cache.hits;
  Alcotest.(check int) "two misses" 2 st.Shape_cache.misses;
  Alcotest.(check int) "nothing stored" 0 st.Shape_cache.entries;
  Alcotest.(check (float 1e-9)) "hit rate 0" 0.0 (Shape_cache.hit_rate st)

let test_cache_unit_capacity_one () =
  let cache = Shape_cache.create ~capacity:1 () in
  Alcotest.(check bool) "A cold" false (lookup cache (shape 3 1));
  Alcotest.(check bool) "A hits" true (lookup cache (shape 3 2));
  (* A new shape flushes the single slot and takes it. *)
  Alcotest.(check bool) "B cold" false (lookup cache (shape 4 1));
  Alcotest.(check int) "still one entry" 1 (Shape_cache.stats cache).Shape_cache.entries;
  Alcotest.(check bool) "B hits" true (lookup cache (shape 4 2));
  Alcotest.(check bool) "A was flushed" false (lookup cache (shape 3 3));
  let st = Shape_cache.stats cache in
  Alcotest.(check int) "hits" 2 st.Shape_cache.hits;
  Alcotest.(check int) "misses" 3 st.Shape_cache.misses;
  Alcotest.(check (float 1e-9)) "hit rate 2/5" 0.4 (Shape_cache.hit_rate st)

let test_cache_unit_epoch_flush_boundary () =
  let cache = Shape_cache.create ~capacity:3 () in
  (* Fill to exactly capacity: no flush yet — length = capacity is the
     boundary, the flush happens on the next new shape. *)
  List.iter (fun h -> ignore (lookup cache (shape h 1))) [ 2; 3; 4 ];
  Alcotest.(check int) "sits at capacity" 3 (Shape_cache.stats cache).Shape_cache.entries;
  List.iter
    (fun h -> Alcotest.(check bool) "resident shape hits" true (lookup cache (shape h 2)))
    [ 2; 3; 4 ];
  (* The fourth shape triggers the epoch flush and enters alone. *)
  Alcotest.(check bool) "fourth shape cold" false (lookup cache (shape 5 1));
  Alcotest.(check int) "table dropped wholesale" 1
    (Shape_cache.stats cache).Shape_cache.entries;
  Alcotest.(check bool) "survivor hits" true (lookup cache (shape 5 2));
  Alcotest.(check bool) "flushed shape re-misses" false (lookup cache (shape 2 3))

let test_cache_unit_clear () =
  let cache = Shape_cache.create ~capacity:8 () in
  ignore (lookup cache (shape 3 1));
  ignore (lookup cache (shape 3 2));
  Alcotest.(check bool) "warm before clear" true
    ((Shape_cache.stats cache).Shape_cache.hits > 0);
  Shape_cache.clear cache;
  let st = Shape_cache.stats cache in
  Alcotest.(check int) "hits zeroed" 0 st.Shape_cache.hits;
  Alcotest.(check int) "misses zeroed" 0 st.Shape_cache.misses;
  Alcotest.(check int) "entries dropped" 0 st.Shape_cache.entries;
  Alcotest.(check (float 1e-9)) "hit rate well-defined after clear" 0.0
    (Shape_cache.hit_rate st);
  Alcotest.(check bool) "post-clear lookup is cold" false (lookup cache (shape 3 3))

(* ---------- multi-device sharding ---------- *)

let test_device_reports_accounting () =
  let policy = { Engine.max_batch = 2; max_wait_us = 50.0; bucketing = Engine.Fifo } in
  let engine =
    Engine.of_spec
      ~config:(Engine.Config.make ~policy ~devices:[ Backend.gpu; Backend.arm ] ())
      small_spec ~backend:gpu
  in
  let rng = Rng.create 61 in
  List.iteri
    (fun i s -> ignore (Engine.submit_exn engine ~arrival_us:(10.0 *. float_of_int i) s))
    (sst_trees rng ~vocab:50 9);
  let s = Engine.drain engine in
  Alcotest.(check int) "one report per device" 2 (List.length s.Engine.device_reports);
  let total f = List.fold_left (fun acc d -> acc + f d) 0 s.Engine.device_reports in
  Alcotest.(check int) "windows partitioned" s.Engine.aggregate.Engine.num_windows
    (total (fun (d : Engine.device_report) -> d.Engine.dr_windows));
  Alcotest.(check int) "requests partitioned" s.Engine.aggregate.Engine.num_requests
    (total (fun (d : Engine.device_report) -> d.Engine.dr_requests));
  List.iter
    (fun (d : Engine.device_report) ->
      Alcotest.(check bool) "utilization in [0,1]" true
        (d.Engine.dr_utilization >= 0.0 && d.Engine.dr_utilization <= 1.0);
      Alcotest.(check bool) "occupancy in [0,1]" true
        (d.Engine.dr_occupancy >= 0.0 && d.Engine.dr_occupancy <= 1.0))
    s.Engine.device_reports;
  List.iter
    (fun (r : Engine.request_report) ->
      Alcotest.(check bool) "device index in range" true
        (r.Engine.rr_device >= 0 && r.Engine.rr_device < 2))
    s.Engine.requests

let test_dispatch_round_robin () =
  let policy = { Engine.max_batch = 1; max_wait_us = 0.0; bucketing = Engine.Fifo } in
  let engine =
    Engine.of_spec
      ~config:
        (Engine.Config.make ~policy ~dispatch:Dispatch.Round_robin
           ~devices:[ Backend.gpu; Backend.gpu ] ())
      small_spec ~backend:gpu
  in
  let rng = Rng.create 62 in
  List.iter (fun s -> ignore (Engine.submit_exn engine s)) (sst_trees rng ~vocab:50 8);
  let s = Engine.drain engine in
  List.iter
    (fun (d : Engine.device_report) ->
      Alcotest.(check int)
        (Printf.sprintf "device %d takes every other window" d.Engine.dr_index)
        4 d.Engine.dr_windows)
    s.Engine.device_reports

let test_dispatch_least_loaded () =
  (* Heterogeneous pair under a backlog, at the paper's hidden size
     (where the GPU's lane advantage is real — at toy hidden sizes the
     launch overhead dominates and ARM keeps up): the fast device frees
     up first and so absorbs more windows than the slow one. *)
  let policy = { Engine.max_batch = 4; max_wait_us = 0.0; bucketing = Engine.Fifo } in
  let spec = Models.Catalog.get "TreeLSTM" Models.Catalog.Small in
  let engine =
    Engine.of_spec
      ~config:
        (Engine.Config.make ~policy ~dispatch:Dispatch.Least_loaded
           ~devices:[ Backend.gpu; Backend.arm ] ())
      spec ~backend:gpu
  in
  let rng = Rng.create 63 in
  List.iter
    (fun s -> ignore (Engine.submit_exn engine s))
    (List.init 32 (fun _ -> Gen.sst_tree rng ~vocab:50 ~len:20 ()));
  let s = Engine.drain engine in
  let w i =
    (List.nth s.Engine.device_reports i).Engine.dr_windows
  in
  Alcotest.(check int) "all windows placed" 8 (w 0 + w 1);
  Alcotest.(check bool)
    (Printf.sprintf "GPU (%d) outruns ARM (%d)" (w 0) (w 1))
    true
    (w 0 > w 1)

let test_dispatch_size_affinity () =
  (* Two shapes in two buckets (7 nodes -> bucket 2, 15 nodes -> bucket
     3) over two devices: each shape must land on exactly one device,
     and on different ones. *)
  let policy = { Engine.max_batch = 1; max_wait_us = 0.0; bucketing = Engine.Fifo } in
  let engine =
    Engine.of_spec
      ~config:
        (Engine.Config.make ~policy ~dispatch:Dispatch.Size_affinity
           ~devices:[ Backend.gpu; Backend.gpu ] ())
      small_spec ~backend:gpu
  in
  let rng = Rng.create 64 in
  List.iter
    (fun height -> ignore (Engine.submit_exn engine (Gen.perfect_tree rng ~vocab:50 ~height ())))
    [ 3; 4; 3; 4; 3; 4 ];
  let s = Engine.drain engine in
  let device_of nodes =
    List.filter_map
      (fun (w : Engine.window_report) ->
        if w.Engine.wr_nodes = nodes then Some w.Engine.wr_device else None)
      s.Engine.windows
    |> List.sort_uniq compare
  in
  Alcotest.(check (list int)) "7-node trees pinned to device 0" [ 0 ] (device_of 7);
  Alcotest.(check (list int)) "15-node trees pinned to device 1" [ 1 ] (device_of 15)

let test_device_scaling () =
  (* The acceptance shape: N homogeneous devices under an open-loop
     Poisson overload give near-linear throughput scaling. *)
  let spec = Models.Catalog.get "TreeLSTM" Models.Catalog.Small in
  let trace =
    Trace.poisson (Rng.create 65) ~rate_rps:100_000.0 ~duration_ms:2.0
      ~gen:(fun rng -> Gen.sst_tree rng ~vocab:100 ~len:8 ())
  in
  let throughput n =
    let policy = { Engine.max_batch = 8; max_wait_us = 100.0; bucketing = Engine.Fifo } in
    let engine =
      Engine.of_spec
        ~config:
          (Engine.Config.make ~policy ~dispatch:Dispatch.Least_loaded
             ~devices:(List.init n (fun _ -> Backend.gpu))
             ())
        spec ~backend:gpu
    in
    (Engine.run_trace engine trace).Engine.aggregate.Engine.throughput_rps
  in
  let t1 = throughput 1 and t2 = throughput 2 and t4 = throughput 4 in
  Alcotest.(check bool)
    (Printf.sprintf "2 devices scale (%.0f vs %.0f)" t2 t1)
    true
    (t2 > 1.5 *. t1);
  Alcotest.(check bool)
    (Printf.sprintf "4 devices scale (%.0f vs %.0f)" t4 t1)
    true
    (t4 > 2.5 *. t1)

(* ---------- trace constructor validation ---------- *)

let test_poisson_validates () =
  let gen rng = Gen.sst_tree rng ~vocab:50 () in
  let expect_invalid label f =
    try
      ignore (f ());
      Alcotest.failf "%s accepted" label
    with Invalid_argument _ -> ()
  in
  expect_invalid "zero rate" (fun () ->
      Trace.poisson (Rng.create 1) ~rate_rps:0.0 ~duration_ms:10.0 ~gen);
  expect_invalid "negative rate" (fun () ->
      Trace.poisson (Rng.create 1) ~rate_rps:(-5.0) ~duration_ms:10.0 ~gen);
  expect_invalid "zero duration" (fun () ->
      Trace.poisson (Rng.create 1) ~rate_rps:100.0 ~duration_ms:0.0 ~gen);
  expect_invalid "non-positive deadline" (fun () ->
      Trace.poisson ~deadline_us:0.0 (Rng.create 1) ~rate_rps:100.0 ~duration_ms:10.0 ~gen);
  (* and a valid call stamps absolute deadlines *)
  let t = Trace.poisson ~deadline_us:500.0 (Rng.create 1) ~rate_rps:5000.0 ~duration_ms:10.0 ~gen in
  List.iter
    (fun (e : Trace.event) ->
      match e.Trace.deadline_us with
      | None -> Alcotest.fail "deadline dropped"
      | Some d -> Alcotest.(check (float 1e-9)) "absolute deadline" (e.Trace.at_us +. 500.0) d)
    t

let test_of_structures_validates () =
  let rng = Rng.create 2 in
  let trees = [ Gen.sst_tree rng ~vocab:50 (); Gen.sst_tree rng ~vocab:50 () ] in
  (try
     ignore (Trace.of_structures ~spacing_us:(-1.0) trees);
     Alcotest.fail "negative spacing accepted"
   with Invalid_argument _ -> ());
  (try
     ignore (Trace.of_structures ~deadline_us:(-10.0) trees);
     Alcotest.fail "negative deadline accepted"
   with Invalid_argument _ -> ());
  let t = Trace.of_structures ~spacing_us:10.0 ~deadline_us:100.0 trees in
  Alcotest.(check (list (float 1e-9))) "arrivals spaced" [ 0.0; 10.0 ]
    (List.map (fun (e : Trace.event) -> e.Trace.at_us) t);
  Alcotest.(check (list (float 1e-9))) "deadlines absolute" [ 100.0; 110.0 ]
    (List.map
       (fun (e : Trace.event) -> Option.get e.Trace.deadline_us)
       t)

(* ---------- the cross-request batching payoff ---------- *)

let test_gpu_throughput_monotone_in_window () =
  (* The serve bench's acceptance shape: for small trees on the GPU,
     simulated throughput improves monotonically with the batch window —
     cross-request forests amortize kernel launches and fill the wide
     machine's lanes. *)
  let spec = Models.Catalog.get "TreeLSTM" Models.Catalog.Small in
  let rng = Rng.create 41 in
  let requests = List.init 24 (fun _ -> Gen.sst_tree rng ~vocab:100 ~len:8 ()) in
  let throughput w =
    let policy = { Engine.max_batch = w; max_wait_us = 0.0; bucketing = Engine.Fifo } in
    let engine = Engine.of_spec ~config:(Engine.Config.make ~policy ()) spec ~backend:gpu in
    let s = Engine.run_trace engine (Trace.of_structures requests) in
    s.Engine.aggregate.Engine.throughput_rps
  in
  let sweep = List.map (fun w -> (w, throughput w)) [ 1; 2; 4; 8; 16 ] in
  let rec monotone = function
    | (wa, a) :: ((wb, b) :: _ as tl) ->
      Alcotest.(check bool)
        (Printf.sprintf "throughput(%d)=%.0f < throughput(%d)=%.0f" wa a wb b)
        true (a < b);
      monotone tl
    | _ -> ()
  in
  monotone sweep

let () =
  Alcotest.run "serve"
    [
      ( "forest",
        [
          Alcotest.test_case "invariants" `Quick test_run_forest_invariants;
          Alcotest.test_case "singleton" `Quick test_forest_of_one_matches_run;
          Alcotest.test_case "equivalence-treelstm" `Quick test_forest_equivalence_treelstm;
          Alcotest.test_case "equivalence-dagrnn" `Quick test_forest_equivalence_dagrnn;
        ] );
      ( "validation",
        [
          Alcotest.test_case "fanout" `Quick test_submit_rejects_fanout;
          Alcotest.test_case "kind" `Quick test_submit_rejects_kind;
          Alcotest.test_case "cycle" `Quick test_cycle_unconstructible;
          Alcotest.test_case "linearizer-fanout" `Quick test_linearizer_rejects_fanout;
          Alcotest.test_case "forest-shapes" `Quick test_linearizer_rejects_forest_shapes;
        ] );
      ( "policies",
        [
          Alcotest.test_case "max-batch" `Quick test_policy_max_batch;
          Alcotest.test_case "max-wait" `Quick test_policy_max_wait;
          Alcotest.test_case "bucketing" `Quick test_policy_bucketing;
          Alcotest.test_case "empty-drain" `Quick test_empty_drain;
          Alcotest.test_case "run-one" `Quick test_run_one_matches_runtime;
        ] );
      ( "windows",
        [
          Alcotest.test_case "deadline-joins" `Quick test_arrival_exactly_at_deadline_joins;
          Alcotest.test_case "max-batch-one" `Quick test_max_batch_one;
          Alcotest.test_case "simultaneous" `Quick test_simultaneous_arrivals;
          Alcotest.test_case "drain-flush" `Quick test_drain_is_a_flush;
          Alcotest.test_case "negative-arrivals" `Quick test_negative_arrivals;
        ] );
      ( "shape-cache",
        [
          Alcotest.test_case "drain-hits" `Quick test_cache_hits_in_drain;
          Alcotest.test_case "disabled" `Quick test_cache_disabled;
          Alcotest.test_case "bitwise-equivalence" `Quick test_cache_hit_bitwise_equivalence;
          Alcotest.test_case "capacity-zero" `Quick test_cache_unit_capacity_zero;
          Alcotest.test_case "capacity-one" `Quick test_cache_unit_capacity_one;
          Alcotest.test_case "epoch-flush-boundary" `Quick test_cache_unit_epoch_flush_boundary;
          Alcotest.test_case "clear" `Quick test_cache_unit_clear;
        ] );
      ( "devices",
        [
          Alcotest.test_case "reports" `Quick test_device_reports_accounting;
          Alcotest.test_case "round-robin" `Quick test_dispatch_round_robin;
          Alcotest.test_case "least-loaded" `Quick test_dispatch_least_loaded;
          Alcotest.test_case "size-affinity" `Quick test_dispatch_size_affinity;
          Alcotest.test_case "scaling" `Quick test_device_scaling;
        ] );
      ( "trace",
        [
          Alcotest.test_case "poisson-validates" `Quick test_poisson_validates;
          Alcotest.test_case "of-structures-validates" `Quick test_of_structures_validates;
        ] );
      ( "serving",
        [
          Alcotest.test_case "gpu-throughput-monotone" `Quick
            test_gpu_throughput_monotone_in_window;
        ] );
    ]
