(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (run with no arguments, or name specific experiments), and
   exposes Bechamel microbenchmarks of the real compilation pipeline
   (--bechamel). *)

let usage () =
  print_endline "usage: main.exe [experiment ...] | --list | --bechamel";
  print_endline "experiments:";
  List.iter (fun (name, _) -> Printf.printf "  %s\n" name) Experiments.all

(* Bechamel measures the actual wall-clock of the pieces that really
   execute on this machine: linearization, compilation, static costing
   and numerical interpretation. *)
let bechamel_tests () =
  let open Bechamel in
  let open Cortex in
  let module M = Models.Common in
  let spec = Models.Catalog.get "TreeLSTM" Models.Catalog.Small in
  let structure = spec.M.dataset (Rng.create 7) ~batch:10 in
  let compiled = Runtime.compile ~options:(Runtime.options_for spec) spec.M.program in
  let small = Models.Tree_lstm.spec ~vocab:50 ~hidden:8 () in
  let small_structure = small.M.dataset (Rng.create 7) ~batch:2 in
  let small_compiled = Runtime.compile ~options:(Runtime.options_for small) small.M.program in
  let small_params = small.M.init_params (Rng.create 8) in
  [
    Test.make ~name:"linearize-treelstm-bs10"
      (Staged.stage (fun () -> ignore (Linearizer.run structure)));
    Test.make ~name:"compile-treelstm"
      (Staged.stage (fun () ->
           ignore (Runtime.compile ~options:(Runtime.options_for spec) spec.M.program)));
    Test.make ~name:"cost+simulate-treelstm-bs10"
      (Staged.stage (fun () ->
           ignore (Runtime.simulate compiled ~backend:Backend.gpu structure)));
    Test.make ~name:"interpret-treelstm-h8-bs2"
      (Staged.stage (fun () ->
           ignore (Runtime.execute small_compiled ~params:small_params small_structure)));
  ]

let run_bechamel () =
  let open Bechamel in
  let benchmark test =
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:(Some 100) () in
    Benchmark.all cfg instances test
  in
  let analyze results =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    Analyze.all ols Toolkit.Instance.monotonic_clock results
  in
  let test = Bechamel.Test.make_grouped ~name:"cortex" ~fmt:"%s %s" (bechamel_tests ()) in
  let results = analyze (benchmark test) in
  Hashtbl.iter
    (fun name result ->
      match Bechamel.Analyze.OLS.estimates result with
      | Some [ est ] -> Printf.printf "%-40s %12.1f ns/run\n" name est
      | _ -> Printf.printf "%-40s (no estimate)\n" name)
    results

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [ "--list" ] -> usage ()
  | [ "--bechamel" ] -> run_bechamel ()
  | [] ->
    print_endline "=== CORTEX evaluation reproduction (all experiments) ===\n";
    List.iter (fun (_, f) -> f ()) Experiments.all
  | names ->
    List.iter
      (fun name ->
        match List.assoc_opt name Experiments.all with
        | Some f -> f ()
        | None ->
          Printf.eprintf "unknown experiment %s\n" name;
          usage ();
          exit 1)
      names
