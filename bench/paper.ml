(* The paper's published numbers (§7), embedded so every experiment can
   print measured-vs-paper side by side.  Latencies in milliseconds. *)

(* Table 4: Cavs vs Cortex on the GPU (Cavs / Cortex), rows are
   (hidden, batch) in the order (hs,1) (hs,10) (hl,1) (hl,10). *)
let table4 =
  [
    ("TreeFC", [| (0.97, 0.09); (3.74, 0.27); (1.22, 0.16); (5.8, 0.69) |]);
    ("TreeGRU", [| (1.95, 0.15); (3.28, 0.27); (2.01, 0.2); (3.66, 0.61) |]);
    ("TreeLSTM", [| (2.54, 0.22); (4.01, 0.44); (2.56, 0.28); (4.43, 0.91) |]);
  ]

(* Table 5: DyNet vs Cortex (DyNet / Cortex); per backend, rows as in
   table4, columns in model order TreeFC DAG-RNN TreeGRU TreeLSTM MV-RNN. *)
let table5 =
  [
    ( "GPU",
      [|
        [| (0.41, 0.08); (1.79, 0.22); (1.41, 0.18); (1.84, 0.24); (0.8, 0.34) |];
        [| (1.54, 0.17); (3.83, 0.39); (4.72, 0.35); (5.28, 0.39); (3.46, 0.78) |];
        [| (0.4, 0.12); (1.78, 0.26); (1.41, 0.25); (1.78, 0.29); (0.87, 0.39) |];
        [| (1.48, 0.37); (3.77, 0.54); (4.63, 0.75); (5.1, 0.7); (3.47, 1.11) |];
      |] );
    ( "Intel",
      [|
        [| (0.42, 0.12); (1.12, 0.19); (0.98, 0.18); (1.15, 0.23); (0.43, 0.29) |];
        [| (3.41, 0.64); (6.07, 0.89); (4.09, 0.89); (5.59, 1.02); (4.68, 1.22) |];
        [| (0.93, 0.42); (2.21, 0.6); (2.45, 0.58); (2.95, 0.54); (1.68, 1.08) |];
        [| (8.03, 2.3); (11.57, 2.27); (8.63, 2.97); (12.36, 3.02); (21.2, 7.3) |];
      |] );
    ( "ARM",
      [|
        [| (1.35, 0.21); (3.48, 0.38); (2.57, 0.3); (2.15, 0.39); (0.52, 0.4) |];
        [| (5.27, 1.58); (11.08, 2.52); (9.59, 1.81); (10.59, 2.58); (5.36, 2.61) |];
        [| (3.24, 0.79); (14.39, 1.55); (8.74, 0.99); (6.11, 1.35); (1.96, 1.95) |];
        [| (10.58, 6.54); (26.84, 8.67); (21.42, 6.08); (20.11, 8.86); (15.35, 16.8) |];
      |] );
  ]

(* Table 6: runtime components for TreeLSTM, GPU, batch 10, h = 256,
   under synchronous profiling.  (graph_ms, memcpy_cpu_ms,
   memcpy_gpu_ms, gpu_compute_ms, kernels, api_ms, exe_ms). *)
let table6 =
  [
    ("DyNet", (1.21, 1.46, 1.03, 1.71, 389, 12.28, 17.38));
    ("Cavs", (0.4, 0.85, 1.16, 0.71, 122, 9.56, 11.57));
    ("CORTEX", (0.01, 0.0, 0.0, 0.32, 1, 0.35, 0.35));
  ]

(* §7.5: linearization times in microseconds, (batch 1, batch 10). *)
let linearization =
  [ ("TreeLSTM/TreeGRU/MV-RNN", (1.31, 9.64)); ("DAG-RNN", (8.2, 95.14)); ("TreeFC", (3.04, 30.36)) ]

(* §7.4: recursive refactoring improves SimpleTreeGRU by ~25% and
   TreeGRU by roughly nothing; unrolling slows TreeLSTM and speeds up
   TreeRNN. *)
let refactoring_simple_gain = 0.25
