(* One function per table/figure of the paper's evaluation (§7 and the
   appendix).  Each prints the regenerated rows next to the paper's
   published numbers where the text gives them. *)

open Cortex
module M = Models.Common
module L = Lower

let seed = 2021

let dataset (spec : M.t) ~batch = spec.M.dataset (Rng.create (seed + batch)) ~batch

(* All Cortex-side measurements go through the serving engine's
   single-request path: one compiled model per (spec, options, backend),
   the same pricing the serving sweeps use. *)
let engine_for ?lock_free ?(base = L.default) (spec : M.t) backend =
  Engine.of_spec ~config:(Engine.Config.make ~options:base ?lock_free ()) spec ~backend

let cortex_report ?lock_free ?base (spec : M.t) backend structure =
  Engine.run_one (engine_for ?lock_free ?base spec backend) structure

let cortex_ms ?lock_free ?base spec backend structure =
  Runtime.total_ms (cortex_report ?lock_free ?base spec backend structure)

let framework_run kind (spec : M.t) backend structure =
  Frameworks.run kind ~backend spec.M.program (Linearizer.run structure)

let framework_ms kind spec backend structure =
  (framework_run kind spec backend structure).Frameworks.total_us /. 1000.0

let size_label = function Models.Catalog.Small -> "h_s" | Models.Catalog.Large -> "h_l"

(* ---------- Fig. 6: speedup over PyTorch ---------- *)

let fig6 () =
  let header = "Model" :: List.concat_map (fun b -> [ b ^ " bs1"; b ^ " bs10" ]) [ "GPU"; "Intel" ] in
  let rows =
    List.map
      (fun name ->
        let spec = Models.Catalog.get name Models.Catalog.Small in
        name
        :: List.concat_map
             (fun backend ->
               List.map
                 (fun batch ->
                   let s = dataset spec ~batch in
                   let pt = framework_ms Frameworks.Pytorch spec backend s in
                   let cx = cortex_ms spec backend s in
                   Table.fx (pt /. cx))
                 [ 1; 10 ])
             [ Backend.gpu; Backend.intel ])
      Models.Catalog.evaluated
  in
  Table.print ~title:"Fig. 6 — Speedup over PyTorch (hidden h_s)" ~header rows;
  print_endline
    "Paper: speedups grow with batch size; larger on GPU than Intel; all > 1.\n"

(* ---------- Table 4: Cavs vs Cortex (GPU) ---------- *)

(* The open-source Cavs supports neither specialization nor the input
   matrix-vector products, so Cortex runs with specialization disabled
   on the recursive portions (§7.2). *)
let cavs_base = { L.default with L.specialize = false }

let table4 () =
  let configs =
    [ (Models.Catalog.Small, 1); (Models.Catalog.Small, 10); (Models.Catalog.Large, 1); (Models.Catalog.Large, 10) ]
  in
  let header =
    [ "Hidden"; "Batch" ]
    @ List.concat_map
        (fun m -> [ m ^ " time"; "speedup"; "paper" ])
        [ "TreeFC"; "TreeGRU"; "TreeLSTM" ]
  in
  let rows =
    List.mapi
      (fun ci (size, batch) ->
        [ size_label size; string_of_int batch ]
        @ List.concat_map
            (fun name ->
              let spec =
                Models.Catalog.get ~variant:M.Recursive_only name size
              in
              let s = dataset spec ~batch in
              let cavs = framework_ms Frameworks.Cavs spec Backend.gpu s in
              let cx = cortex_ms ~base:cavs_base spec Backend.gpu s in
              let paper_cavs, paper_cx = (List.assoc name Paper.table4).(ci) in
              [
                Printf.sprintf "%s/%s" (Table.fms cavs) (Table.fms cx);
                Table.fx (cavs /. cx);
                Printf.sprintf "%g/%g=%s" paper_cavs paper_cx
                  (Table.fx (paper_cavs /. paper_cx));
              ])
            [ "TreeFC"; "TreeGRU"; "TreeLSTM" ])
      configs
  in
  Table.print
    ~title:
      "Table 4 — Cavs vs CORTEX on GPU (ms, Cavs/CORTEX; specialization off, no input MVs)"
    ~header rows;
  print_newline ()

(* ---------- Table 5: DyNet vs Cortex ---------- *)

let table5 () =
  let configs =
    [ (Models.Catalog.Small, 1); (Models.Catalog.Small, 10); (Models.Catalog.Large, 1); (Models.Catalog.Large, 10) ]
  in
  let backends = [ ("GPU", Backend.gpu); ("Intel", Backend.intel); ("ARM", Backend.arm) ] in
  List.iter
    (fun (bname, backend) ->
      let paper_rows = List.assoc bname Paper.table5 in
      let header =
        [ "Hidden"; "Batch" ]
        @ List.concat_map (fun m -> [ m; "x"; "paper x" ]) Models.Catalog.evaluated
      in
      let rows =
        List.mapi
          (fun ci (size, batch) ->
            [ size_label size; string_of_int batch ]
            @ List.concat
                (List.mapi
                   (fun mi name ->
                     let spec = Models.Catalog.get name size in
                     let s = dataset spec ~batch in
                     let dy = framework_ms Frameworks.Dynet spec backend s in
                     let cx = cortex_ms spec backend s in
                     let pd, pc = paper_rows.(ci).(mi) in
                     [
                       Printf.sprintf "%s/%s" (Table.fms dy) (Table.fms cx);
                       Table.fx (dy /. cx);
                       Table.fx (pd /. pc);
                     ])
                   Models.Catalog.evaluated))
          configs
      in
      Table.print
        ~title:(Printf.sprintf "Table 5 (%s) — DyNet vs CORTEX (ms, DyNet/CORTEX)" bname)
        ~header rows;
      print_newline ())
    backends

(* ---------- Fig. 7: latency vs hidden size (recursive TreeLSTM) ---------- *)

let fig7 () =
  let hiddens = [ 32; 64; 128; 256; 384; 512 ] in
  let header = [ "Hidden"; "Cavs GPU"; "DyNet GPU"; "CORTEX GPU"; "DyNet Intel"; "CORTEX Intel" ] in
  let rows =
    List.map
      (fun h ->
        let spec = Models.Tree_lstm.spec ~variant:M.Recursive_only ~hidden:h () in
        let s = dataset spec ~batch:10 in
        [
          string_of_int h;
          Table.fms (framework_ms Frameworks.Cavs spec Backend.gpu s);
          Table.fms (framework_ms Frameworks.Dynet spec Backend.gpu s);
          Table.fms (cortex_ms ~base:cavs_base spec Backend.gpu s);
          Table.fms (framework_ms Frameworks.Dynet spec Backend.intel s);
          Table.fms (cortex_ms ~base:cavs_base spec Backend.intel s);
        ])
      hiddens
  in
  Table.print
    ~title:"Fig. 7 — Inference latency (ms) vs hidden size, recursive TreeLSTM, batch 10"
    ~header rows;
  print_endline
    "Paper: baseline latencies stay high and flat at small hidden sizes (overheads dominate).\n"

(* ---------- Table 6: runtime component breakdown ---------- *)

let table6 () =
  let spec = Models.Catalog.get "TreeLSTM" Models.Catalog.Small in
  let s = dataset spec ~batch:10 in
  let header =
    [ "Framework"; "Graph/batch"; "Memcpy CPU/GPU"; "GPU compute"; "#Kernels"; "API time"; "Exe time" ]
  in
  let fw_row ?(spec = spec) name kind =
    let r = framework_run kind spec Backend.gpu s in
    [
      name;
      Table.fms (r.Frameworks.graph_us /. 1000.0);
      Printf.sprintf "%s/%s"
        (Table.fms (r.Frameworks.memcpy_cpu_us /. 1000.0))
        (Table.fms (r.Frameworks.memcpy_gpu_us /. 1000.0));
      Table.fms (r.Frameworks.device_compute_us /. 1000.0);
      string_of_int r.Frameworks.kernel_calls;
      Table.fms (r.Frameworks.api_sync_us /. 1000.0);
      Table.fms (r.Frameworks.profiled_total_us /. 1000.0);
    ]
  in
  let cortex_row =
    let r = cortex_report spec Backend.gpu s in
    let launches = r.Runtime.latency.Backend.kernel_launches in
    let api = float_of_int launches *. Backend.gpu.Backend.sync_call_overhead_us in
    [
      "CORTEX";
      Table.fms (r.Runtime.linearize_us /. 1000.0);
      "-/-";
      Table.fms (r.Runtime.latency.Backend.compute_us /. 1000.0);
      string_of_int launches;
      Table.fms (api /. 1000.0);
      Table.fms ((api +. r.Runtime.latency.Backend.compute_us) /. 1000.0);
    ]
  in
  let cavs_spec = Models.Catalog.get ~variant:M.Recursive_only "TreeLSTM" Models.Catalog.Small in
  let rows =
    [ fw_row "DyNet" Frameworks.Dynet; fw_row ~spec:cavs_spec "Cavs" Frameworks.Cavs; cortex_row ]
  in
  Table.print
    ~title:
      "Table 6 — Runtime components (ms), TreeLSTM, GPU, batch 10, h=256 (synchronous profiling)"
    ~header rows;
  let paper_rows =
    List.map
      (fun (n, (g, mc, mg, c, k, a, e)) ->
        [
          n; Table.fms g;
          Printf.sprintf "%s/%s" (Table.fms mc) (Table.fms mg);
          Table.fms c; string_of_int k; Table.fms a; Table.fms e;
        ])
      Paper.table6
  in
  Table.print ~title:"  (paper's measurements)" ~header paper_rows;
  print_newline ()

(* ---------- Fig. 8: memory-access breakdown ---------- *)

let fig8 () =
  let spec = Models.Catalog.get "TreeLSTM" Models.Catalog.Small in
  let s = dataset spec ~batch:10 in
  let header = [ "System"; "Off-chip MB"; "On-chip MB"; "Persisted params MB" ] in
  let mb v = Printf.sprintf "%.2f" (v /. 1.0e6) in
  let fw name kind =
    let r = framework_run kind spec Backend.gpu s in
    [ name; mb r.Frameworks.traffic_bytes; "-"; "-" ]
  in
  let cx =
    let r = cortex_report spec Backend.gpu s in
    let l = r.Runtime.latency in
    [
      "CORTEX";
      mb (l.Backend.global_traffic_bytes +. l.Backend.param_traffic_bytes);
      mb l.Backend.onchip_traffic_bytes;
      mb (Cortex.Backend.persisted_bytes Backend.gpu r.Runtime.cost);
    ]
  in
  Table.print
    ~title:"Fig. 8 — Memory traffic, TreeLSTM, GPU, batch 10, h=256"
    ~header
    [ fw "DyNet" Frameworks.Dynet; fw "Cavs" Frameworks.Cavs; cx ];
  print_endline
    "Paper: CORTEX keeps intermediates and persisted weights on-chip; DyNet/Cavs round-trip global memory.\n"

(* ---------- Fig. 9: vs hand-optimized GRNN ---------- *)

let fig9 () =
  let header = [ "Model"; "GRNN"; "GRNN (lock-based)"; "CORTEX" ] in
  let row name ~refactor =
    let spec = Models.Catalog.get name Models.Catalog.Small in
    let base =
      if refactor then { L.default with L.refactor = true } else L.default
    in
    let s = dataset spec ~batch:1 in
    [
      name;
      Table.fms (cortex_ms ~lock_free:true ~base spec Backend.gpu s);
      Table.fms (cortex_ms ~lock_free:false ~base spec Backend.gpu s);
      Table.fms (cortex_ms ~base spec Backend.gpu s);
    ]
  in
  Table.print
    ~title:"Fig. 9 — Sequential models vs GRNN (ms), length 100, h=256, GPU"
    ~header
    [ row "LSTM" ~refactor:false; row "GRU" ~refactor:true ];
  print_endline
    "Paper: CORTEX is competitive; the gap to GRNN is its lock-free global barrier.\n"

(* ---------- Fig. 10a: progressive optimizations ---------- *)

let fig10a () =
  let configs =
    [
      ("unfused", { L.baseline with L.dynamic_batch = true });
      ("+fusion", { L.default with L.specialize = false; persist = false });
      ("+specialization", { L.default with L.persist = false });
      ("+persistence", L.default);
    ]
  in
  let header = "Model" :: List.map fst configs in
  let rows =
    List.map
      (fun name ->
        let spec = Models.Catalog.get name Models.Catalog.Small in
        let s = dataset spec ~batch:10 in
        name
        :: List.map
             (fun (_, base) -> Printf.sprintf "%.3f" (cortex_ms ~base spec Backend.gpu s))
             configs)
      Models.Catalog.evaluated
  in
  Table.print
    ~title:"Fig. 10a — Benefits of optimizations (ms), GPU, batch 10, h_s"
    ~header rows;
  print_endline
    "Paper: fusion helps everywhere; specialization helps tree models (not DAG-RNN); persistence adds a further win.\n"

(* ---------- Fig. 10b: unrolling ---------- *)

let fig10b () =
  let header = [ "Model"; "no unroll"; "unrolled"; "effect" ] in
  let row name =
    let spec = Models.Catalog.get name Models.Catalog.Small in
    let s = dataset spec ~batch:10 in
    let base_ms = cortex_ms spec Backend.gpu s in
    let unroll_base = { L.default with L.unroll = true; persist = false } in
    let unrolled_ms = cortex_ms ~base:unroll_base spec Backend.gpu s in
    [
      name;
      Table.fms base_ms;
      Table.fms unrolled_ms;
      (if unrolled_ms > base_ms *. 1.02 then "slower"
       else if unrolled_ms < base_ms *. 0.98 then "faster"
       else "~same");
    ]
  in
  Table.print
    ~title:"Fig. 10b — Unrolling (ms), GPU, batch 10, h=256 (persistence off under unrolling, App. D)"
    ~header
    [ row "TreeLSTM"; row "TreeRNN" ];
  print_endline
    "Paper: unrolling slows TreeLSTM (extra global barriers, Fig. 11) and speeds up TreeRNN (block-local groups).\n"

(* ---------- Fig. 10c: recursive refactoring ---------- *)

let fig10c () =
  let header = [ "Model"; "no refactor"; "refactored"; "change %" ] in
  let row name =
    let spec = Models.Catalog.get name Models.Catalog.Small in
    let s = dataset spec ~batch:10 in
    let base_ms = cortex_ms spec Backend.gpu s in
    let ref_ms = cortex_ms ~base:{ L.default with L.refactor = true } spec Backend.gpu s in
    [
      name;
      Table.fms base_ms;
      Table.fms ref_ms;
      Printf.sprintf "%+.1f%%" (100.0 *. (base_ms -. ref_ms) /. base_ms);
    ]
  in
  Table.print
    ~title:"Fig. 10c — Recursive refactoring (ms), GPU, batch 10, h=256"
    ~header
    [ row "TreeGRU"; row "SimpleTreeGRU" ];
  Printf.printf
    "Paper: ~0%% for TreeGRU, ~%.0f%% for SimpleTreeGRU.\n\n"
    (100.0 *. Paper.refactoring_simple_gain)

(* ---------- §7.5: linearization overheads ---------- *)

let table_linearize () =
  let header = [ "Dataset"; "batch 1 (us)"; "batch 10 (us)"; "paper (1/10)" ] in
  let time spec batch =
    let s = dataset spec ~batch in
    Stats.min_time_us ~repeats:10 (fun () -> Linearizer.run s)
  in
  let rows =
    List.map
      (fun (label, spec, paper_key) ->
        let t1 = time spec 1 and t10 = time spec 10 in
        let p1, p10 = List.assoc paper_key Paper.linearization in
        [
          label;
          Printf.sprintf "%.2f" t1;
          Printf.sprintf "%.2f" t10;
          Printf.sprintf "%.4g/%.4g" p1 p10;
        ])
      [
        ( "TreeLSTM/TreeGRU/MV-RNN (SST)",
          Models.Catalog.get "TreeLSTM" Models.Catalog.Small,
          "TreeLSTM/TreeGRU/MV-RNN" );
        ("DAG-RNN (10x10)", Models.Catalog.get "DAG-RNN" Models.Catalog.Small, "DAG-RNN");
        ("TreeFC (perfect h7)", Models.Catalog.get "TreeFC" Models.Catalog.Small, "TreeFC");
      ]
  in
  Table.print ~title:"§7.5 — Data structure linearization time (measured on this host)" ~header rows;
  print_endline
    "Note: measured wall-clock of the real linearizer on this machine; the paper's numbers are for their Intel host.\n"

(* ---------- Fig. 12: peak memory ---------- *)

let fig12 () =
  let header = [ "Model"; "PyTorch"; "CORTEX"; "DyNet(inf)"; "Cavs"; "DyNet" ] in
  let kb v = Printf.sprintf "%.0f" (v /. 1024.0) in
  let rows =
    List.map
      (fun name ->
        let spec = Models.Catalog.get name Models.Catalog.Small in
        let s = dataset spec ~batch:10 in
        let lin = Linearizer.run s in
        let fw kind = (Frameworks.run kind ~backend:Backend.gpu spec.M.program lin).Frameworks.memory_bytes in
        let cx = (cortex_report spec Backend.gpu s).Runtime.device_memory_bytes in
        [
          name;
          kb (fw Frameworks.Pytorch);
          kb cx;
          kb (Frameworks.dynet_inference_memory ~backend:Backend.gpu spec.M.program lin);
          kb (fw Frameworks.Cavs);
          kb (fw Frameworks.Dynet);
        ])
      Models.Catalog.evaluated
  in
  Table.print ~title:"Fig. 12 — Peak device memory (KB), batch 10, h_s" ~header rows;
  print_endline "Paper ordering: PyTorch < CORTEX < DyNet(inference) < Cavs < DyNet.\n"

(* ---------- Fig. 14 / App. C: roofline ---------- *)

let fig14 () =
  let n = 255 and h = 256 in
  let header = [ "Batch"; "O_CORTEX"; "O_DyNet"; "O_PyTorch"; "asymptotic C/D/P" ] in
  let rows =
    List.map
      (fun b ->
        let c = Roofline.cortex ~n ~b ~h in
        let d = Roofline.dynet ~n ~b ~h in
        let p = Roofline.pytorch ~n ~b ~h in
        [
          string_of_int b;
          Printf.sprintf "%.1f" c.Roofline.intensity;
          Printf.sprintf "%.1f" d.Roofline.intensity;
          Printf.sprintf "%.2f" p.Roofline.intensity;
          Printf.sprintf "%.1f/%.1f/%.2f"
            (Roofline.asymptotic_cortex ~b ~n0:h)
            (Roofline.asymptotic_dynet ~b ~n0:h)
            (Roofline.asymptotic_pytorch ());
        ])
      [ 1; 2; 4; 10 ]
  in
  Table.print
    ~title:"Fig. 14 / App. C — TreeFC operational intensity (flop/byte), perfect trees h7, h=256"
    ~header rows;
  print_endline "Paper: O_CORTEX > O_DyNet > O_PyTorch.\n"

(* ---------- App. D: register-pressure schedule validity ---------- *)

let appd () =
  let header = [ "Model"; "persist"; "persist+peel"; "persist+unroll" ] in
  let rows =
    List.map
      (fun name ->
        let spec = Models.Catalog.get name Models.Catalog.Small in
        let s = dataset spec ~batch:10 in
        let verdict base =
          let r = cortex_report ~base spec Backend.gpu s in
          let hidden = Models.Catalog.hidden_of name Models.Catalog.Small in
          match
            Runtime.Schedule_check.check ~backend:Backend.gpu ~hidden
              ~states:(List.length spec.M.program.Ra.states)
              (Runtime.options_for ~base spec)
              ~cost:r.Runtime.cost
          with
          | Runtime.Schedule_check.Valid -> "ok"
          | Runtime.Schedule_check.Invalid _ -> "REJECTED"
        in
        [
          name;
          verdict { L.default with L.dynamic_batch = true };
          verdict L.default;
          verdict { L.default with L.unroll = true };
        ])
      [ "TreeLSTM"; "TreeRNN" ]
  in
  Table.print
    ~title:"App. D — Register-pressure schedule checks (GPU, h=256)"
    ~header rows;
  print_endline
    "Paper: persistence cannot be combined with unrolling (TreeLSTM/TreeRNN) nor with loop peeling for TreeLSTM.\n"

(* ---------- extra ablation: barrier placement (§A.4) ---------- *)

let ablation_barrier () =
  let header = [ "Model"; "carrier (CORTEX)"; "innermost (stock TVM)"; "barriers C/T" ] in
  let rows =
    List.map
      (fun name ->
        let spec = Models.Catalog.get name Models.Catalog.Small in
        let s = dataset spec ~batch:10 in
        let run mode =
          cortex_report ~base:{ L.default with L.barrier_mode = mode } spec Backend.gpu s
        in
        let carrier = run Barrier.Carrier in
        let conservative = run Barrier.Conservative in
        [
          name;
          Table.fms (Runtime.total_ms carrier);
          Table.fms (Runtime.total_ms conservative);
          Printf.sprintf "%d/%d" carrier.Runtime.latency.Backend.barriers
            conservative.Runtime.latency.Backend.barriers;
        ])
      [ "TreeLSTM"; "TreeGRU" ]
  in
  Table.print
    ~title:"§A.4 ablation — Barrier placement: dependence-carrying loop vs innermost loop (ms, GPU, batch 10)"
    ~header rows;
  print_newline ()

(* ---------- calibration helper (not part of the paper) ---------- *)

let debug () =
  let show name (spec : M.t) ~base ~batch backend =
    let s = dataset spec ~batch in
    let r = cortex_report ~base spec backend s in
    let l = r.Runtime.latency in
    Printf.printf
      "%-22s N=%4d  total=%8.1fus compute=%8.1f barrier=%6.1f(%4d) launch=%6.1f(%2d) lin=%5.1f param=%6.0fKB glob=%6.0fKB onchip=%7.0fKB\n"
      name r.Runtime.num_nodes
      (l.Backend.total_us +. r.Runtime.linearize_us)
      l.Backend.compute_us l.Backend.barrier_us l.Backend.barriers l.Backend.launch_us
      l.Backend.kernel_launches r.Runtime.linearize_us
      (l.Backend.param_traffic_bytes /. 1024.)
      (l.Backend.global_traffic_bytes /. 1024.)
      (l.Backend.onchip_traffic_bytes /. 1024.)
  in
  let show_fw name kind (spec : M.t) ~batch backend =
    let s = dataset spec ~batch in
    let r = framework_run kind spec backend s in
    Printf.printf
      "%-22s total=%8.1fus graph=%7.1f cpycpu=%7.1f cpygpu=%7.1f compute=%8.1f launch=%7.1f kernels=%4d\n"
      name r.Frameworks.total_us r.Frameworks.graph_us r.Frameworks.memcpy_cpu_us
      r.Frameworks.memcpy_gpu_us r.Frameworks.device_compute_us r.Frameworks.launch_us
      r.Frameworks.kernel_calls
  in
  List.iter
    (fun (name, size) ->
      let full = Models.Catalog.get name size in
      let rec_only = Models.Catalog.get ~variant:M.Recursive_only name size in
      Printf.printf "--- %s (%s) GPU batch 10 ---\n" name (size_label size);
      show (name ^ " cortex-full") full ~base:L.default ~batch:10 Backend.gpu;
      show (name ^ " cortex-rec-nospec") rec_only ~base:cavs_base ~batch:10 Backend.gpu;
      show_fw (name ^ " dynet") Frameworks.Dynet full ~batch:10 Backend.gpu;
      show_fw (name ^ " cavs") Frameworks.Cavs rec_only ~batch:10 Backend.gpu;
      show_fw (name ^ " pytorch") Frameworks.Pytorch full ~batch:10 Backend.gpu;
      show (name ^ " cortex-b1") full ~base:L.default ~batch:1 Backend.gpu;
      show_fw (name ^ " dynet-b1") Frameworks.Dynet full ~batch:1 Backend.gpu)
    [
      ("TreeFC", Models.Catalog.Small);
      ("TreeLSTM", Models.Catalog.Small);
      ("TreeLSTM", Models.Catalog.Large);
      ("TreeGRU", Models.Catalog.Small);
      ("DAG-RNN", Models.Catalog.Small);
      ("MV-RNN", Models.Catalog.Small);
    ]

(* ---------- extra: §6 grid-search tuning ---------- *)

let tuning () =
  let header = [ "Model"; "best schedule"; "best ms"; "default ms"; "worst valid ms" ] in
  let rows =
    List.map
      (fun name ->
        let spec = Models.Catalog.get name Models.Catalog.Small in
        let s = dataset spec ~batch:10 in
        let ranked = Tuner.tune spec ~backend:Backend.gpu s in
        let best = List.hd ranked in
        let worst = List.nth ranked (List.length ranked - 1) in
        let default_ms = cortex_ms spec Backend.gpu s in
        [
          name;
          best.Tuner.label;
          Table.fms (Runtime.total_ms best.Tuner.report);
          Table.fms default_ms;
          Table.fms (Runtime.total_ms worst.Tuner.report);
        ])
      Models.Catalog.evaluated
  in
  Table.print
    ~title:"§6 — Grid search over recursion schedules (GPU, batch 10, h_s)"
    ~header rows;
  print_endline
    "The tuner re-derives the paper's default configuration (fuse+spec+batch+persist) for every model.
"

(* ---------- extra: loop-schedule autotuning (level-2 search) ---------- *)

(* Not a paper table: the paper's prototype grid-searches hand-written
   loop schedules per model; this sweep runs the two-level search
   (recursion options x loop plans) and reports default-vs-tuned
   latency per (model, backend, batch).  Besides the printed table it
   writes BENCH_autotune.json so CI and the docs can consume the
   numbers without scraping stdout. *)
let autotune () =
  let json_escape s =
    let b = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b
  in
  let records = ref [] in
  let header = [ "Model"; "Backend"; "Batch"; "default ms"; "tuned ms"; "speedup" ] in
  let rows =
    List.concat_map
      (fun name ->
        let spec = Models.Catalog.get name Models.Catalog.Small in
        List.concat_map
          (fun (backend : Backend.t) ->
            List.map
              (fun batch ->
                let s = dataset spec ~batch in
                let base = Tuner.best spec ~backend s in
                let tuned = Tuner.best2 spec ~backend s in
                (* Simulated device latency only: the measured host
                   linearization wall clock is identical work on both
                   sides and its jitter would swamp small wins. *)
                let default_ms =
                  base.Tuner.report.Runtime.latency.Backend.total_us /. 1000.0
                in
                let tuned_ms =
                  tuned.Tuner.pc_report.Runtime.latency.Backend.total_us /. 1000.0
                in
                records :=
                  Printf.sprintf
                    "  {\"model\": \"%s\", \"backend\": \"%s\", \"batch\": %d, \
                     \"default_ms\": %.4f, \"tuned_ms\": %.4f, \"speedup\": %.3f, \
                     \"options\": \"%s\", \"plan\": \"%s\"}"
                    (json_escape name) (json_escape backend.Backend.short) batch
                    default_ms tuned_ms (default_ms /. tuned_ms)
                    (json_escape tuned.Tuner.pc_label)
                    (json_escape (Schedule.plan_to_string tuned.Tuner.pc_plan))
                  :: !records;
                [
                  name;
                  backend.Backend.short;
                  string_of_int batch;
                  Table.fms default_ms;
                  Table.fms tuned_ms;
                  Table.fx (default_ms /. tuned_ms);
                ])
              [ 8; 16; 32; 64 ])
          Backend.all)
      [ "TreeLSTM"; "TreeGRU"; "DAG-RNN" ]
  in
  Table.print
    ~title:
      "Loop-schedule autotuning — default schedule vs two-level search (h_s)"
    ~header rows;
  let oc = open_out "BENCH_autotune.json" in
  output_string oc "[\n";
  output_string oc (String.concat ",\n" (List.rev !records));
  output_string oc "\n]\n";
  close_out oc;
  print_endline
    "Lane-binding the serial reduction loops is the consistent win: the fused cell's\n\
     FMA chains run at the backend's serial issue rate until bound.  Wrote BENCH_autotune.json.\n"

(* ---------- extra: AOT bundles (lib/bundle) ---------- *)

(* Not a paper table: cold-start latency of a serving process with and
   without an ahead-of-time bundle, plus the memory planner's
   planned-vs-worst on-chip footprint per model.  "Without" runs the
   full lowering pipeline ([Runtime.compile]); "with" loads, validates
   (digest) and unmarshals a prebuilt artifact.  Parameter I/O is
   excluded from both sides — a fresh server reads a checkpoint either
   way — so the bundles here carry no weights section.  Writes
   BENCH_bundle.json. *)
let bundle () =
  let json_escape s =
    let b = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b
  in
  let records = ref [] in
  let header =
    [ "Model"; "compile ms"; "load ms"; "cold-start"; "planned KB"; "worst KB"; "arena saving" ]
  in
  let rows =
    List.map
      (fun name ->
        let spec = Models.Catalog.get name Models.Catalog.Small in
        let options = Runtime.options_for spec in
        let compile_us =
          Stats.min_time_us ~repeats:5 (fun () ->
              ignore (Runtime.compile ~options spec.M.program))
        in
        let compiled = Runtime.compile ~options spec.M.program in
        let b =
          Bundle.create ~model:name ~size:"small" ~backend:Backend.gpu.Backend.short
            compiled
        in
        let path = Filename.temp_file "cortex_bundle" ".cbz" in
        Bundle.save path b;
        let load_us =
          Stats.min_time_us ~repeats:5 (fun () -> ignore (Bundle.load path))
        in
        Sys.remove path;
        (* The planner's concrete numbers need UF extents resolved
           against a linearized input (batch sizes, node counts). *)
        let bound = Lower.bind compiled (Linearizer.run (dataset spec ~batch:10)) in
        let mp =
          Mem_plan.plan ~uf:bound.Lower.uf_resolver
            ~spaces:[ Ir.Shared; Ir.Register ] compiled.Lower.prog
        in
        let planned = mp.Mem_plan.arena_bytes and worst = mp.Mem_plan.worst_bytes in
        let saving =
          if worst = 0 then 0.0
          else 100.0 *. float_of_int (worst - planned) /. float_of_int worst
        in
        records :=
          Printf.sprintf
            "  {\"model\": \"%s\", \"compile_us\": %.1f, \"bundle_load_us\": %.1f, \
             \"cold_start_speedup\": %.2f, \"planned_onchip_bytes\": %d, \
             \"worst_onchip_bytes\": %d, \"arena_saving_pct\": %.1f}"
            (json_escape name) compile_us load_us
            (compile_us /. Float.max load_us 1e-9)
            planned worst saving
          :: !records;
        [
          name;
          Table.fms (compile_us /. 1000.0);
          Table.fms (load_us /. 1000.0);
          Table.fx (compile_us /. Float.max load_us 1e-9);
          Printf.sprintf "%.0f" (float_of_int planned /. 1024.0);
          Printf.sprintf "%.0f" (float_of_int worst /. 1024.0);
          Printf.sprintf "%.0f%%" saving;
        ])
      [ "TreeFC"; "DAG-RNN"; "TreeGRU"; "TreeLSTM"; "MV-RNN" ]
  in
  Table.print
    ~title:
      "AOT bundles — cold start (compile vs load) and the liveness planner's arena (h_s, batch 10)"
    ~header rows;
  let oc = open_out "BENCH_bundle.json" in
  output_string oc "[\n";
  output_string oc (String.concat ",\n" (List.rev !records));
  output_string oc "\n]\n";
  close_out oc;
  print_endline
    "Serving from a bundle replaces the lowering pipeline with one validated read, and\n\
     liveness packing shares arena space between the cell's phase-disjoint staging\n\
     buffers.  Wrote BENCH_bundle.json.\n"

(* ---------- extra: cross-request serving (lib/serve) ---------- *)

(* Not a paper table: the paper batches one multi-tree input per call.
   This sweep serves an open queue of single-tree requests and shows the
   same dynamic-batching win applying across requests — larger batch
   windows amortize kernel launches into wider forest levels, trading
   queueing delay for throughput. *)
let serving () =
  let spec = Models.Catalog.get "TreeLSTM" Models.Catalog.Small in
  let requests =
    let rng = Rng.create seed in
    List.init 64 (fun _ -> Gen.sst_tree rng ~vocab:200 ())
  in
  let trace = Trace.of_structures requests in
  let windows = [ 1; 2; 4; 8; 16 ] in
  let backends = [ ("GPU", Backend.gpu); ("Intel", Backend.intel); ("ARM", Backend.arm) ] in
  let header = [ "Backend"; "max_batch"; "windows"; "req/s"; "mean us"; "p50 us"; "p99 us" ] in
  let rows =
    List.concat_map
      (fun (bname, backend) ->
        List.map
          (fun w ->
            let policy = { Engine.max_batch = w; max_wait_us = 0.0; bucketing = Engine.Fifo } in
            let engine = Engine.of_spec ~config:(Engine.Config.make ~policy ()) spec ~backend in
            let s = Engine.run_trace engine trace in
            let a = s.Engine.aggregate in
            [
              bname;
              string_of_int w;
              string_of_int a.Engine.num_windows;
              Printf.sprintf "%.0f" a.Engine.throughput_rps;
              Printf.sprintf "%.1f" a.Engine.mean_us;
              Printf.sprintf "%.1f" a.Engine.p50_us;
              Printf.sprintf "%.1f" a.Engine.p99_us;
            ])
          windows)
      backends
  in
  Table.print
    ~title:
      "Serving — batch-window sweep, 64 single-tree TreeLSTM requests (SST, h_s), saturated queue"
    ~header rows;
  print_endline
    "Throughput grows with the window on every backend (launch amortization + wider levels);\nthe GPU gains the most, and p99 latency is the price of waiting for a full window.\n";
  (* And under an open-loop Poisson load: FIFO vs size-bucketed windows. *)
  let ptrace =
    Trace.poisson (Rng.create (seed + 1)) ~rate_rps:4000.0 ~duration_ms:30.0
      ~gen:(fun rng -> Gen.sst_tree rng ~vocab:200 ())
  in
  let header = [ "Policy"; "req"; "windows"; "req/s"; "mean us"; "p50 us"; "p99 us" ] in
  let rows =
    List.map
      (fun (label, bucketing) ->
        let policy = { Engine.max_batch = 8; max_wait_us = 300.0; bucketing } in
        let engine = Engine.of_spec ~config:(Engine.Config.make ~policy ()) spec ~backend:Backend.gpu in
        let s = Engine.run_trace engine ptrace in
        let a = s.Engine.aggregate in
        [
          label;
          string_of_int a.Engine.num_requests;
          string_of_int a.Engine.num_windows;
          Printf.sprintf "%.0f" a.Engine.throughput_rps;
          Printf.sprintf "%.1f" a.Engine.mean_us;
          Printf.sprintf "%.1f" a.Engine.p50_us;
          Printf.sprintf "%.1f" a.Engine.p99_us;
        ])
      [ ("FIFO", Engine.Fifo); ("By-size", Engine.By_size) ]
  in
  Table.print
    ~title:
      "Serving — Poisson 4000 req/s for 30 ms, GPU, max_batch 8 / max_wait 300 us"
    ~header rows;
  print_newline ();
  (* Device-scaling sweep: same overload trace sharded across N GPUs,
     one row per dispatch policy.  The load saturates a single device, so
     near-linear throughput scaling with N is the expected shape. *)
  let strace =
    Trace.poisson (Rng.create (seed + 2)) ~rate_rps:40000.0 ~duration_ms:10.0
      ~gen:(fun rng -> Gen.sst_tree rng ~vocab:200 ())
  in
  let header =
    [ "Dispatch"; "devices"; "req/s"; "p99 us"; "makespan ms"; "max util"; "occupancy" ]
  in
  let rows =
    List.concat_map
      (fun dispatch ->
        List.map
          (fun n ->
            let devices = List.init n (fun _ -> Backend.gpu) in
            let policy = { Engine.max_batch = 8; max_wait_us = 300.0; bucketing = Engine.Fifo } in
            let engine = Engine.of_spec ~config:(Engine.Config.make ~policy ~dispatch ~devices ()) spec ~backend:Backend.gpu in
            let s = Engine.run_trace engine strace in
            let a = s.Engine.aggregate in
            let max_util =
              List.fold_left
                (fun acc (d : Engine.device_report) -> Float.max acc d.Engine.dr_utilization)
                0.0 s.Engine.device_reports
            in
            let occ =
              let busy, w =
                List.fold_left
                  (fun (b, w) (d : Engine.device_report) ->
                    (b +. d.Engine.dr_busy_us, w +. (d.Engine.dr_occupancy *. d.Engine.dr_busy_us)))
                  (0.0, 0.0) s.Engine.device_reports
              in
              if busy = 0.0 then 0.0 else w /. busy
            in
            [
              Dispatch.policy_to_string dispatch;
              string_of_int n;
              Printf.sprintf "%.0f" a.Engine.throughput_rps;
              Printf.sprintf "%.1f" a.Engine.p99_us;
              Printf.sprintf "%.2f" (a.Engine.makespan_us /. 1000.0);
              Printf.sprintf "%.0f%%" (100.0 *. max_util);
              Printf.sprintf "%.0f%%" (100.0 *. occ);
            ])
          [ 1; 2; 4; 8 ])
      [ Dispatch.Round_robin; Dispatch.Least_loaded; Dispatch.Size_affinity ]
  in
  Table.print
    ~title:
      "Serving — device scaling, Poisson 40k req/s for 10 ms (overload), N x GPU, max_batch 8"
    ~header rows;
  print_endline
    "Throughput scales near-linearly until the offered load is no longer the bottleneck;\nleast-loaded keeps the per-device utilization spread tightest.\n";
  (* Shape-cache sweep: a repeated-shape workload (perfect trees of a few
     heights) with the cache off vs on.  Hits skip the inspector, so the
     linearize column collapses while latency/throughput stay honest. *)
  let ctrace =
    Trace.poisson (Rng.create (seed + 3)) ~rate_rps:4000.0 ~duration_ms:30.0
      ~gen:(fun rng ->
        let height = 3 + Rng.int rng 3 in
        Gen.perfect_tree rng ~height ~vocab:200 ())
  in
  let header =
    [ "Cache"; "hits"; "misses"; "hit rate"; "mean lin us"; "req/s"; "p99 us" ]
  in
  let rows =
    List.map
      (fun (label, cache_capacity) ->
        let policy = { Engine.max_batch = 1; max_wait_us = 0.0; bucketing = Engine.Fifo } in
        let engine =
          Engine.of_spec ~config:(Engine.Config.make ~policy ~cache_capacity ()) spec ~backend:Backend.gpu
        in
        let s = Engine.run_trace engine ctrace in
        let a = s.Engine.aggregate in
        let c = s.Engine.cache in
        let mean_lin =
          let lins =
            List.map (fun (w : Engine.window_report) -> w.Engine.wr_report.Runtime.linearize_us)
              s.Engine.windows
          in
          Stats.mean lins
        in
        [
          label;
          string_of_int c.Shape_cache.hits;
          string_of_int c.Shape_cache.misses;
          Printf.sprintf "%.0f%%" (100.0 *. Shape_cache.hit_rate c);
          Printf.sprintf "%.1f" mean_lin;
          Printf.sprintf "%.0f" a.Engine.throughput_rps;
          Printf.sprintf "%.1f" a.Engine.p99_us;
        ])
      [ ("off", 0); ("on", 1024) ]
  in
  Table.print
    ~title:
      "Serving — shape-keyed linearization cache, repeated perfect-tree shapes (heights 3-5), max_batch 1"
    ~header rows;
  print_endline
    "With a handful of hot shapes the cache converges to ~100% hits: a hit re-binds payloads\nin O(nodes) instead of re-running the inspector, collapsing the linearization column.\n"

(* ---------- extra: chaos sweep (fault-tolerant serving) ---------- *)

(* Availability under injected faults: the same open-loop trace played
   against fleets of 1/2/4 devices with increasing transient-abort
   rates, plus a fail-stop column sweep.  Every run installs a fault
   spec (possibly empty), so the whole table is deterministic in the
   seed — chaos mode charges no measured linearization wall clock. *)
let chaos () =
  let spec = Models.Catalog.get "TreeLSTM" Models.Catalog.Small in
  let trace ?deadline_us ?(rate_rps = 20000.0) () =
    Trace.poisson ?deadline_us (Rng.create (seed + 4)) ~rate_rps
      ~duration_ms:10.0
      ~gen:(fun rng -> Gen.sst_tree rng ~vocab:200 ())
  in
  let offered = Trace.length (trace ()) in
  let policy = { Engine.max_batch = 8; max_wait_us = 300.0; bucketing = Engine.Fifo } in
  let run ?queue_cap ?rate_rps ~devices ~faults () =
    let devs = List.init devices (fun _ -> Backend.gpu) in
    let engine =
      Engine.of_spec
        ~config:
          (Engine.Config.make ~policy ~dispatch:Dispatch.Least_loaded ~devices:devs
             ?queue_cap ~faults ~seed:42 ())
        spec ~backend:Backend.gpu
    in
    Engine.run_trace engine (trace ~deadline_us:4000.0 ?rate_rps ())
  in
  let header =
    [ "devices"; "p(abort)"; "offered"; "completed"; "avail"; "retries"; "p99 us"; "goodput r/s" ]
  in
  let rows =
    List.concat_map
      (fun devices ->
        List.map
          (fun p ->
            let faults =
              if p = 0.0 then []
              else [ Fault.Transient { device = -1; prob = p; from_us = 0.0; until_us = infinity } ]
            in
            let s = run ~devices ~faults () in
            let slo = s.Engine.slo in
            let served = slo.Engine.slo_completed + slo.Engine.slo_lost in
            [
              string_of_int devices;
              Printf.sprintf "%.2f" p;
              string_of_int offered;
              string_of_int slo.Engine.slo_completed;
              Printf.sprintf "%.1f%%"
                (100.0 *. float_of_int slo.Engine.slo_completed
                /. float_of_int (max 1 served));
              string_of_int slo.Engine.slo_retries;
              Printf.sprintf "%.1f" s.Engine.aggregate.Engine.p99_us;
              Printf.sprintf "%.0f" slo.Engine.slo_goodput_rps;
            ])
          [ 0.0; 0.05; 0.2 ])
      [ 1; 2; 4 ]
  in
  Table.print
    ~title:
      "Chaos — transient kernel aborts, Poisson 20k req/s for 10 ms, deadline 4 ms, retry budget 4"
    ~header rows;
  print_endline
    "Retries absorb transient aborts (availability stays ~100% up to p=0.2 — lost requests need\n5 consecutive aborts); the price is retry latency in the p99 and goodput columns.\n";
  (* Fail-stop: kill one device mid-trace and watch failover re-dispatch
     its in-flight window to the survivors. *)
  let header =
    [ "devices"; "fail"; "completed"; "lost"; "failovers"; "p99 us"; "goodput r/s" ]
  in
  let rows =
    List.concat_map
      (fun devices ->
        List.map
          (fun at_us ->
            let faults =
              match at_us with
              | None -> []
              | Some t -> [ Fault.Fail_stop { device = 0; at_us = t } ]
            in
            (* Overload (2x a device's capacity) keeps device 0 busy at
               the instant it dies, so the failover path actually runs. *)
            let s = run ~rate_rps:40000.0 ~devices ~faults () in
            let slo = s.Engine.slo in
            [
              string_of_int devices;
              (match at_us with None -> "-" | Some t -> Printf.sprintf "dev0@%.0fms" (t /. 1000.));
              string_of_int slo.Engine.slo_completed;
              string_of_int slo.Engine.slo_lost;
              string_of_int slo.Engine.slo_failovers;
              Printf.sprintf "%.1f" s.Engine.aggregate.Engine.p99_us;
              Printf.sprintf "%.0f" slo.Engine.slo_goodput_rps;
            ])
          [ None; Some 2000.0 ])
      [ 2; 4 ]
  in
  Table.print
    ~title:"Chaos — fail-stop of device 0 at t=2 ms, survivors absorb the load"
    ~header rows;
  print_endline
    "No request is lost to a fail-stop while any device survives: in-flight windows abort at the\ninstant of death and fail over (re-bound through the shape cache, never re-linearized).\n";
  (* Load shedding: 2x overload with and without a queue cap. *)
  let header =
    [ "queue cap"; "completed"; "shed"; "p99 us"; "req/s"; "goodput r/s" ]
  in
  let rows =
    List.map
      (fun cap ->
        let s = run ?queue_cap:cap ~rate_rps:80000.0 ~devices:2 ~faults:[] () in
        let slo = s.Engine.slo in
        [
          (match cap with None -> "none" | Some c -> string_of_int c);
          string_of_int slo.Engine.slo_completed;
          string_of_int slo.Engine.slo_shed;
          Printf.sprintf "%.1f" s.Engine.aggregate.Engine.p99_us;
          Printf.sprintf "%.0f" s.Engine.aggregate.Engine.throughput_rps;
          Printf.sprintf "%.0f" slo.Engine.slo_goodput_rps;
        ])
      [ None; Some 128; Some 64 ]
  in
  Table.print
    ~title:"Chaos — load shedding at 2x overload (2 x GPU, deadline 4 ms)"
    ~header rows;
  print_endline
    "A queue cap trades completed requests for bounded tail latency: the shed column is demand\nthe server refused instead of queuing past its deadline.\n"

(* ---------- extra: observability (lib/obs) ---------- *)

(* Profile one chaos drain end to end: per-track span accounting out of
   the exported Chrome trace, the metrics snapshot, and the two claims
   the obs test suite pins — the exported trace passes the validator,
   and recording changes nothing (identical SLO block with and without
   the handle installed). *)
let observability () =
  let spec = Models.Catalog.get "TreeLSTM" Models.Catalog.Small in
  let trace =
    Trace.poisson (Rng.create (seed + 5)) ~rate_rps:20000.0 ~duration_ms:10.0
      ~deadline_us:4000.0
      ~gen:(fun rng -> Gen.sst_tree rng ~vocab:200 ())
  in
  let faults =
    [ Fault.Transient { device = -1; prob = 0.1; from_us = 0.0; until_us = infinity } ]
  in
  let run ?obs () =
    let policy = { Engine.max_batch = 8; max_wait_us = 300.0; bucketing = Engine.Fifo } in
    let engine =
      Engine.of_spec
        ~config:
          (Engine.Config.make ~policy ~dispatch:Dispatch.Least_loaded
             ~devices:[ Backend.gpu; Backend.gpu ] ~faults ~seed:42 ?obs ())
        spec ~backend:Backend.gpu
    in
    Engine.run_trace engine trace
  in
  let obs = Obs.create ~clock:Obs.Logical () in
  let s = run ~obs () in
  let events = Obs.events obs in
  (* Per-track accounting straight off the exported events: thread_name
     metadata names the tracks, balanced B/E pairs give span time. *)
  let names = Hashtbl.create 8 in
  List.iter
    (fun (e : Chrome_trace.event) ->
      if e.Chrome_trace.ev_ph = Chrome_trace.Metadata && e.Chrome_trace.ev_name = "thread_name"
      then
        match List.assoc_opt "name" e.Chrome_trace.ev_args with
        | Some (Chrome_trace.Str n) ->
          Hashtbl.replace names (e.Chrome_trace.ev_pid, e.Chrome_trace.ev_tid) n
        | _ -> ())
    events;
  let acc = Hashtbl.create 8 in
  List.iter
    (fun (e : Chrome_trace.event) ->
      let key = (e.Chrome_trace.ev_pid, e.Chrome_trace.ev_tid) in
      let spans, instants, stack, busy =
        Option.value (Hashtbl.find_opt acc key) ~default:(0, 0, [], 0.0)
      in
      match e.Chrome_trace.ev_ph with
      | Chrome_trace.Begin ->
        Hashtbl.replace acc key (spans + 1, instants, e.Chrome_trace.ev_ts_us :: stack, busy)
      | Chrome_trace.End ->
        (match stack with
         | t0 :: rest ->
           Hashtbl.replace acc key
             (spans, instants, rest, busy +. (e.Chrome_trace.ev_ts_us -. t0))
         | [] -> ())
      | Chrome_trace.Instant ->
        Hashtbl.replace acc key (spans, instants + 1, stack, busy)
      | Chrome_trace.Metadata -> ())
    events;
  let header = [ "track"; "spans"; "instants"; "span time" ] in
  let rows =
    Hashtbl.fold (fun key name acc' -> (key, name) :: acc') names []
    |> List.sort compare
    |> List.map (fun (key, name) ->
           let spans, instants, _, busy =
             Option.value (Hashtbl.find_opt acc key) ~default:(0, 0, [], 0.0)
           in
           let time =
             (* Wall tracks under a Logical clock count ticks, not
                microseconds — print them as such. *)
             if fst key = 1 then Printf.sprintf "%.0f ticks" busy
             else Printf.sprintf "%.1f us" busy
           in
           [ name; string_of_int spans; string_of_int instants; time ])
  in
  Table.print
    ~title:
      "Observability — per-track span accounting, chaos drain (TreeLSTM, 2 x GPU, p(abort)=0.1)"
    ~header rows;
  (match Obs_validate.check events with
   | Ok () -> Printf.printf "validator: OK (%d events)\n" (List.length events)
   | Error e -> Printf.printf "validator: FAILED — %s\n" (Obs_validate.error_to_string e));
  let bare = run () in
  Printf.printf "zero interference: SLO with obs %s without\n"
    (if s.Engine.slo = bare.Engine.slo
        && s.Engine.aggregate = bare.Engine.aggregate
     then "identical to" else "DIFFERS from");
  (match s.Engine.metrics with
   | Some snap -> print_newline (); print_string (Metrics.render snap)
   | None -> ());
  print_newline ()

(* ---------- sessions: delta linearization vs cold re-linearization ---------- *)

(* The serving tentpole's payoff, measured: a growing conversation
   served token-by-token through a pinned session (delta views +
   geometric [Linearizer.extend] materialization) versus a session-less
   server that re-linearizes the whole conversation on every token.
   Both sides are the engine's own measured host inspector wall clock
   (summed [rr_linearize_us]); the cold engine runs size-1 windows with
   the shape cache disabled, since every growing prefix is a new shape
   anyway.  Also checks the tentpole's exactness claim: the forest
   grown by repeated [extend] is bitwise identical to a cold
   [run_forest] of the final conversation.  Writes
   BENCH_incremental.json. *)
let incremental () =
  let spec = Models.Catalog.get "TreeLSTM" Models.Catalog.Small in
  let forest_equal (a : Linearizer.forest) (b : Linearizer.forest) =
    let open Linearizer in
    let la = a.lin and lb = b.lin in
    la.num_nodes = lb.num_nodes
    && la.num_leaves = lb.num_leaves
    && la.max_children = lb.max_children
    && la.leaf_begin = lb.leaf_begin
    && la.new_of_old = lb.new_of_old
    && la.old_of_new = lb.old_of_new
    && la.child = lb.child
    && la.num_children = lb.num_children
    && la.payload = lb.payload
    && la.level_of = lb.level_of
    && la.batches = lb.batches
    && la.postorder = lb.postorder
    && Array.length a.spans = Array.length b.spans
    && Array.for_all2
         (fun (x : span) (y : span) ->
           x.span_ids = y.span_ids && x.span_levels = y.span_levels)
         a.spans b.spans
  in
  let conversation tokens =
    let rng = Rng.create (seed + tokens) in
    let g = Gen.growth_start rng ~vocab:50 ~kind:Structure.Tree () in
    let first = Gen.growth_structure g in
    first :: List.init tokens (fun _ -> Gen.grow_one rng g)
  in
  let inspector_total (s : Engine.summary) =
    List.fold_left
      (fun acc (r : Engine.request_report) -> acc +. r.Engine.rr_linearize_us)
      0.0 s.Engine.requests
  in
  let records = ref [] in
  let header =
    [ "Nodes"; "Tokens"; "session us/tok"; "cold us/tok"; "speedup";
      "materializations"; "bitwise" ]
  in
  let rows =
    List.map
      (fun tokens ->
        let structs = conversation tokens in
        let final = List.nth structs tokens in
        let n = Structure.num_nodes final in
        let submit_all eng ?session () =
          List.iteri
            (fun i s ->
              ignore
                (Engine.submit_exn eng
                   ~arrival_us:(1000.0 *. float_of_int i)
                   ?session s))
            structs;
          Engine.drain eng
        in
        let eng_s = Engine.of_spec spec ~backend:Backend.gpu in
        let ss = submit_all eng_s ~session:"bench" () in
        let session_total = inspector_total ss in
        let sn = List.hd ss.Engine.sessions in
        let eng_c =
          Engine.of_spec
            ~config:
              (Engine.Config.make
                 ~policy:{ Engine.max_batch = 1; max_wait_us = 0.0; bucketing = Engine.Fifo }
                 ~cache_capacity:0 ())
            spec ~backend:Backend.gpu
        in
        let cold_total = inspector_total (submit_all eng_c ()) in
        (* Exactness: grow the forest by repeated extension and compare
           it bitwise with a cold linearization of the final structure. *)
        let grown =
          List.fold_left
            (fun (f, prev) s ->
              let b = Structure.num_nodes prev in
              let d =
                {
                  Linearizer.d_request = 0;
                  d_roots = s.Structure.roots;
                  d_nodes =
                    Array.sub s.Structure.nodes b (Structure.num_nodes s - b);
                }
              in
              (Linearizer.extend f d, s))
            (Linearizer.run_forest [ List.hd structs ], List.hd structs)
            (List.tl structs)
        in
        let bitwise = forest_equal (fst grown) (Linearizer.run_forest [ final ]) in
        let per_tok t = t /. float_of_int (tokens + 1) in
        records :=
          Printf.sprintf
            "  {\"kind\": \"tree\", \"nodes\": %d, \"tokens\": %d, \
             \"session_total_us\": %.2f, \"session_per_token_us\": %.3f, \
             \"cold_total_us\": %.2f, \"cold_per_token_us\": %.3f, \
             \"speedup\": %.2f, \"extends\": %d, \"cold_windows\": %d, \
             \"materializations\": %d, \"bitwise\": %b}"
            n tokens session_total (per_tok session_total) cold_total
            (per_tok cold_total)
            (cold_total /. Float.max session_total 1e-9)
            sn.Engine.sn_extends sn.Engine.sn_cold sn.Engine.sn_materializations
            bitwise
          :: !records;
        [
          string_of_int n;
          string_of_int tokens;
          Printf.sprintf "%.2f" (per_tok session_total);
          Printf.sprintf "%.2f" (per_tok cold_total);
          Table.fx (cold_total /. Float.max session_total 1e-9);
          string_of_int sn.Engine.sn_materializations;
          (if bitwise then "yes" else "NO");
        ])
      [ 32; 128; 512; 1024 ]
  in
  Table.print
    ~title:
      "Incremental serving — per-token host inspector cost, sessions vs full re-linearization"
    ~header rows;
  let oc = open_out "BENCH_incremental.json" in
  output_string oc "[\n";
  output_string oc (String.concat ",\n" (List.rev !records));
  output_string oc "\n]\n";
  close_out oc;
  print_endline
    "A pinned session pays O(delta) host work per token (delta views, with geometric\n\
     extend materializations amortizing to O(1) per node); the session-less server's\n\
     per-token cost grows with the conversation.  Wrote BENCH_incremental.json.\n"

(* ---------- Bounded session table: goodput vs budget ---------- *)

(* Growing conversations under a shrinking session-table budget: every
   row is one chaos-mode drain (empty fault spec installed, so device
   times are priced and the artifact is byte-reproducible), reporting
   goodput and per-token latency as evictions force spill/restore
   churn.  The budget points are fractions of the unbounded run's
   final accounted bytes, so the sweep tracks the model instead of
   hard-coding sizes.  Writes BENCH_sessions.json — committed, and
   re-generated/diffed by CI like the chaos and FMECA artifacts. *)
let sessions_bench () =
  (* A deliberately small hidden size: numeric serving runs through the
     reference interpreter, and the sweep's subject is the session
     table (eviction counts, priced costs), not tensor throughput. *)
  let spec = Models.Tree_lstm.spec ~vocab:50 ~hidden:8 () in
  let params = spec.M.init_params (Rng.create (seed + 1)) in
  let chaos = match Fault.parse "" with Ok f -> f | Error e -> failwith e in
  let num_sessions = 6 and tokens = 24 in
  (* One growth trace per session, generated once and replayed under
     every budget so the rows differ only in the table's policy.  The
     lazy session (index 0) stops growing a quarter of the way in —
     it is the TTL row's expiry victim. *)
  let traces =
    List.init num_sessions (fun i ->
        let rng = Rng.create (seed + (31 * i)) in
        let g = Gen.growth_start rng ~vocab:50 ~kind:Structure.Tree () in
        let n = if i = 0 then tokens / 4 else tokens in
        ( Printf.sprintf "chat-%d" i,
          Gen.growth_structure g :: List.init n (fun _ -> Gen.grow_one rng g) ))
  in
  let run ?session_budget_bytes ?session_ttl_us () =
    let engine =
      Engine.of_spec
        ~config:
          (Engine.Config.make ~faults:chaos ~seed ~params ?session_budget_bytes
             ?session_ttl_us ())
        spec ~backend:Backend.gpu
    in
    List.iteri
      (fun i (name, structs) ->
        List.iteri
          (fun j s ->
            ignore
              (Engine.submit_exn engine
                 ~arrival_us:((400.0 *. float_of_int j) +. (7.0 *. float_of_int i))
                 ~session:name s))
          structs)
      traces;
    Engine.drain engine
  in
  (* Unbounded first: its final accounted bytes anchor the sweep. *)
  let base = run () in
  let full_bytes = base.Engine.session_table.Session_store.st_bytes in
  let budgets =
    [ None; Some (full_bytes * 3 / 4); Some (full_bytes / 2); Some (full_bytes / 4) ]
  in
  let ttl_us = 3000.0 in
  let records = ref [] in
  let header =
    [ "budget B"; "ttl us"; "goodput req/s"; "us/token"; "evict"; "expired";
      "spills"; "restores"; "restore us" ]
  in
  let row ?session_budget_bytes ?session_ttl_us (s : Engine.summary) =
    let a = s.Engine.aggregate in
    let st = s.Engine.session_table in
    let slo = s.Engine.slo in
    records :=
      Printf.sprintf
        "  {\"kind\": \"sweep\", \"budget_bytes\": %s, \"ttl_us\": %s, \
         \"sessions\": %d, \"tokens\": %d, \"goodput_rps\": %.0f, \
         \"per_token_us\": %.2f, \"p99_us\": %.1f, \"evictions\": %d, \
         \"expired\": %d, \"spills\": %d, \"restores\": %d, \
         \"spilled_bytes\": %d, \"spill_us\": %.1f, \"restore_us\": %.1f, \
         \"live\": %d, \"live_bytes\": %d}"
        (match session_budget_bytes with Some b -> string_of_int b | None -> "null")
        (match session_ttl_us with Some t -> Printf.sprintf "%.0f" t | None -> "null")
        num_sessions tokens slo.Engine.slo_goodput_rps a.Engine.mean_us
        a.Engine.p99_us st.Session_store.st_evictions st.Session_store.st_expired
        st.Session_store.st_spills st.Session_store.st_restores
        st.Session_store.st_spilled_bytes st.Session_store.st_spill_us
        st.Session_store.st_restore_us st.Session_store.st_live
        st.Session_store.st_bytes
      :: !records;
    [
      (match session_budget_bytes with Some b -> string_of_int b | None -> "inf");
      (match session_ttl_us with Some t -> Printf.sprintf "%.0f" t | None -> "-");
      Printf.sprintf "%.0f" slo.Engine.slo_goodput_rps;
      Printf.sprintf "%.2f" a.Engine.mean_us;
      string_of_int st.Session_store.st_evictions;
      string_of_int st.Session_store.st_expired;
      string_of_int st.Session_store.st_spills;
      string_of_int st.Session_store.st_restores;
      Printf.sprintf "%.1f" st.Session_store.st_restore_us;
    ]
  in
  let rows =
    List.map
      (fun session_budget_bytes ->
        let s =
          match session_budget_bytes with
          | None -> base
          | Some b -> run ~session_budget_bytes:b ()
        in
        row ?session_budget_bytes s)
      budgets
    @ [ row ~session_ttl_us:ttl_us (run ~session_ttl_us:ttl_us ()) ]
  in
  Table.print
    ~title:
      (Printf.sprintf
         "Bounded session table — %d growing TreeLSTM conversations, budget sweep \
          (unbounded table ends at %d bytes)"
         num_sessions full_bytes)
    ~header rows;
  (* The priced spill/restore cost curve: what one eviction round-trip
     costs at a given serialized size (fixed overhead + bytes over
     bandwidth — the same numbers folded into the rows above). *)
  List.iter
    (fun bytes ->
      records :=
        Printf.sprintf
          "  {\"kind\": \"cost\", \"bytes\": %d, \"spill_us\": %.2f, \"restore_us\": %.2f}"
          bytes
          (Session_store.spill_cost_us ~bytes)
          (Session_store.restore_cost_us ~bytes)
        :: !records)
    [ 1024; 16384; 262144; 1048576 ];
  let oc = open_out "BENCH_sessions.json" in
  output_string oc "[\n";
  output_string oc (String.concat ",\n" (List.rev !records));
  output_string oc "\n]\n";
  close_out oc;
  print_endline
    "Shrinking the budget trades accounted bytes for spill/restore churn: goodput\n\
     degrades smoothly (restores are priced delta windows, not cold replays) and\n\
     every run above is byte-reproducible under its seed.  Wrote BENCH_sessions.json.\n"

(* ---------- multi-session packing: the committed latency sweep ---------- *)

(* Concurrent conversations growing in lock step, served one window per
   token (pack off) versus merged into shared forest windows (pack on).
   Chaos mode pins the device clock to the priced simulation, so every
   number below is a pure function of (seed, spec, trace) and the
   committed BENCH_packing.json re-generates byte-identically in CI.
   The bench also replays both configurations numerically and asserts
   the packed results bitwise equal the size-1 path — the artifact can
   never show a speedup bought with drift. *)
let packing () =
  let spec = Models.Tree_lstm.spec ~vocab:50 ~hidden:8 () in
  let params = spec.M.init_params (Rng.create (seed + 1)) in
  let chaos = match Fault.parse "" with Ok f -> f | Error e -> failwith e in
  let tokens = 8 in
  let traces sessions =
    List.init sessions (fun i ->
        let rng = Rng.create (seed + (31 * i)) in
        let g = Gen.growth_start rng ~vocab:50 ~kind:Structure.Tree () in
        (* Bind the start snapshot before growing: [::] evaluates its
           tail first, so inlining [growth_structure g] would capture
           the fully-grown conversation as the head. *)
        let start = Gen.growth_structure g in
        ( Printf.sprintf "chat-%d" i,
          start :: List.init tokens (fun _ -> Gen.grow_one rng g) ))
  in
  let run ~pack traces =
    let engine =
      Engine.of_spec
        ~config:
          (Engine.Config.make ~faults:chaos ~seed ~params
             ~session_pack_window:(if pack then 64 else 1)
             ~session_pack_wait_us:(if pack then 500.0 else 0.0) ())
        spec ~backend:Backend.gpu
    in
    (* Token waves: token [j] of every conversation lands within 200us,
       a new wave every 1000us — the arrival pattern packing exists
       for. *)
    List.iteri
      (fun i (name, structs) ->
        List.iteri
          (fun j s ->
            ignore
              (Engine.submit_exn engine
                 ~arrival_us:((1000.0 *. float_of_int j) +. (3.0 *. float_of_int i))
                 ~session:name s))
          structs)
      traces;
    Engine.drain engine
  in
  let device_us (s : Engine.summary) =
    List.fold_left
      (fun acc (w : Engine.window_report) ->
        acc +. w.Engine.wr_report.Runtime.latency.Backend.total_us)
      0.0 s.Engine.windows
  in
  let launches (s : Engine.summary) =
    List.fold_left
      (fun acc (w : Engine.window_report) ->
        acc + w.Engine.wr_report.Runtime.latency.Backend.kernel_launches)
      0 s.Engine.windows
  in
  let sorted_results (s : Engine.summary) =
    List.sort (fun (a, _) (b, _) -> compare a b) s.Engine.results
  in
  let records = ref [] in
  let header =
    [ "sessions"; "packed us/tok"; "size-1 us/tok"; "speedup";
      "launches"; "size-1 launches"; "packed windows" ]
  in
  let rows =
    List.map
      (fun sessions ->
        let tr = traces sessions in
        let sp = run ~pack:true tr and su = run ~pack:false tr in
        (* Every request must complete in both runs, with bitwise
           identical root outputs: the packed windows' merged batches
           change the launch schedule, never the numbers. *)
        let rp = sorted_results sp and ru = sorted_results su in
        assert (List.length rp = sessions * (tokens + 1));
        assert (List.length ru = List.length rp);
        List.iter2
          (fun (ia, va) (ib, vb) ->
            assert (ia = ib);
            assert (Tensor.max_abs_diff va vb = 0.0))
          rp ru;
        let toks = float_of_int (sessions * (tokens + 1)) in
        let per_p = device_us sp /. toks and per_u = device_us su /. toks in
        if sessions >= 16 then begin
          assert (per_p < per_u);
          assert (launches sp < launches su)
        end;
        records :=
          Printf.sprintf
            "  {\"sessions\": %d, \"tokens_per_session\": %d, \
             \"pack_window\": 64, \"packed_windows\": %d, \
             \"packed_tokens\": %d, \"device_us_per_token\": %.3f, \
             \"unpacked_device_us_per_token\": %.3f, \"kernel_launches\": %d, \
             \"unpacked_kernel_launches\": %d, \"goodput_rps\": %.0f, \
             \"unpacked_goodput_rps\": %.0f}"
            sessions tokens sp.Engine.packed_windows sp.Engine.packed_tokens
            per_p per_u (launches sp) (launches su)
            sp.Engine.slo.Engine.slo_goodput_rps
            su.Engine.slo.Engine.slo_goodput_rps
          :: !records;
        [
          string_of_int sessions;
          Printf.sprintf "%.2f" per_p;
          Printf.sprintf "%.2f" per_u;
          Printf.sprintf "%.2fx" (per_u /. per_p);
          string_of_int (launches sp);
          string_of_int (launches su);
          string_of_int sp.Engine.packed_windows;
        ])
      [ 4; 8; 16; 32; 64 ]
  in
  Table.print
    ~title:
      (Printf.sprintf
         "Multi-session delta packing — concurrent TreeLSTM conversations, %d \
          tokens each, pack window 64 vs size-1 windows (per-token simulated \
          device latency)"
         tokens)
    ~header rows;
  let oc = open_out "BENCH_packing.json" in
  output_string oc "[\n";
  output_string oc (String.concat ",\n" (List.rev !records));
  output_string oc "\n]\n";
  close_out oc;
  print_endline
    "Per-level launch overhead amortizes across the pack: per-token device\n\
     latency drops as concurrency grows while every result stays bitwise equal\n\
     to the size-1 path (asserted above).  Wrote BENCH_packing.json.\n"

(* ---------- FMECA: the reliability campaign's committed ranking ---------- *)

(* One seeded chaos run per failure mode on the campaign grid, scored
   severity x occurrence x detectability against a fault-free baseline
   and ranked by RPN.  Writes BENCH_fmeca.json — the committed artifact
   CI re-generates and diffs, so a rank change is a reviewable
   reliability regression, never noise. *)
let fmeca () =
  let res = Fmeca.run ~seed:42 () in
  print_string (Fmeca.table res);
  print_newline ();
  let undetected =
    List.filter
      (fun (sc : Fmeca.score) -> sc.Fmeca.sc_detection = Scan.Undetected)
      res.Fmeca.res_rows
  in
  let oc = open_out "BENCH_fmeca.json" in
  output_string oc (Fmeca.json_lines res);
  close_out oc;
  Printf.printf
    "%d failure modes across %d component families; %d damage with no warning span\n\
     (the detectability gaps worth instrumenting next).  Wrote BENCH_fmeca.json.\n"
    (List.length res.Fmeca.res_rows)
    (List.length (Fmeca.families ()))
    (List.length undetected)

let all =
  [
    ("fig6", fig6);
    ("table4", table4);
    ("table5", table5);
    ("fig7", fig7);
    ("table6", table6);
    ("fig8", fig8);
    ("fig9", fig9);
    ("fig10a", fig10a);
    ("fig10b", fig10b);
    ("fig10c", fig10c);
    ("table_linearize", table_linearize);
    ("fig12", fig12);
    ("fig14", fig14);
    ("appd", appd);
    ("ablation_barrier", ablation_barrier);
    ("serving", serving);
    ("chaos", chaos);
    ("observability", observability);
    ("tuning", tuning);
    ("autotune", autotune);
    ("bundle", bundle);
    ("incremental", incremental);
    ("sessions", sessions_bench);
    ("packing", packing);
    ("fmeca", fmeca);
    ("breakdown", debug);
  ]
