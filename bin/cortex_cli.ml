(* The cortex command-line tool: inspect and drive the compiler on the
   model zoo.

     cortex list
     cortex dump-ir TreeLSTM --hidden 4 --no-fuse
     cortex simulate TreeLSTM --backend gpu --batch 10 --size small
     cortex run TreeRNN --hidden 8 --batch 2
     cortex linearize --batch 10                                     *)

open Cortex
open Cmdliner
module M = Models.Common

let model_names =
  [ "TreeFC"; "DAG-RNN"; "TreeGRU"; "TreeLSTM"; "MV-RNN"; "TreeRNN"; "SimpleTreeGRU"; "LSTM"; "GRU" ]

let model_arg =
  let doc = "Model short name (see `cortex list')." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"MODEL" ~doc)

let size_arg =
  let parse = function
    | "small" | "hs" -> Ok Models.Catalog.Small
    | "large" | "hl" -> Ok Models.Catalog.Large
    | s -> Error (`Msg ("unknown size " ^ s))
  in
  let print fmt s =
    Format.pp_print_string fmt
      (match s with Models.Catalog.Small -> "small" | Models.Catalog.Large -> "large")
  in
  Arg.(value & opt (conv (parse, print)) Models.Catalog.Small & info [ "size" ] ~doc:"small (h_s) or large (h_l)")

let backend_arg =
  let parse = function
    | "gpu" -> Ok Backend.gpu
    | "intel" -> Ok Backend.intel
    | "arm" -> Ok Backend.arm
    | s -> Error (`Msg ("unknown backend " ^ s))
  in
  let print fmt (b : Backend.t) = Format.pp_print_string fmt b.Backend.short in
  Arg.(value & opt (conv (parse, print)) Backend.gpu & info [ "backend" ] ~doc:"gpu | intel | arm")

let batch_arg = Arg.(value & opt int 10 & info [ "batch" ] ~doc:"Number of inputs batched together")
let seed_arg = Arg.(value & opt int 2021 & info [ "seed" ] ~doc:"Dataset/parameter seed")

let options_flags =
  let flag name doc = Arg.(value & flag & info [ name ] ~doc) in
  let combine no_fuse no_spec no_batch no_persist unroll refactor =
    {
      Lower.default with
      Lower.fuse = not no_fuse;
      specialize = not no_spec;
      dynamic_batch = not no_batch;
      persist = not no_persist;
      unroll;
      refactor;
    }
  in
  Term.(
    const combine
    $ flag "no-fuse" "Disable kernel fusion"
    $ flag "no-specialize" "Disable specialization"
    $ flag "no-dynamic-batch" "Disable dynamic batching"
    $ flag "no-persist" "Disable model persistence"
    $ flag "unroll" "Unroll the recursion once"
    $ flag "refactor" "Apply recursive refactoring")

let list_cmd =
  let run () =
    List.iter
      (fun name ->
        let hs = Models.Catalog.hidden_of name Models.Catalog.Small in
        let hl = Models.Catalog.hidden_of name Models.Catalog.Large in
        Printf.printf "%-14s h_s=%-4d h_l=%d\n" name hs hl)
      model_names
  in
  Cmd.v (Cmd.info "list" ~doc:"List the model zoo") Term.(const run $ const ())

let get_spec ?hidden name size =
  match hidden with
  | None -> Models.Catalog.get name size
  | Some h ->
    (match name with
     | "TreeFC" -> Models.Tree_fc.spec ~vocab:200 ~hidden:h ()
     | "TreeRNN" -> Models.Tree_rnn.spec ~vocab:200 ~hidden:h ()
     | "TreeLSTM" -> Models.Tree_lstm.spec ~vocab:200 ~hidden:h ()
     | "TreeGRU" -> Models.Tree_gru.spec ~vocab:200 ~hidden:h ()
     | "SimpleTreeGRU" -> Models.Tree_gru.spec ~vocab:200 ~simple:true ~hidden:h ()
     | "MV-RNN" -> Models.Mv_rnn.spec ~vocab:50 ~hidden:h ()
     | "DAG-RNN" -> Models.Dag_rnn.spec ~hidden:h ()
     | "LSTM" -> Models.Tree_lstm.spec ~vocab:200 ~sequence:true ~hidden:h ()
     | "GRU" -> Models.Tree_gru.spec ~vocab:200 ~sequence:true ~hidden:h ()
     | other -> invalid_arg ("unknown model " ^ other))

let hidden_arg =
  Arg.(value & opt (some int) None & info [ "hidden" ] ~doc:"Override the hidden size")

let config_file_arg =
  Arg.(value & opt (some file) None
       & info [ "config" ] ~docv:"FILE"
           ~doc:"Engine configuration file: Engine.Config key=value lines \
                 (# comments and blank lines ignored)")

(* Returns the raw text alongside the parsed config: [of_string]
   parses over [default], so only the text can tell whether a key was
   explicitly set (the seed's historical CLI default differs from the
   record default). *)
let load_config = function
  | None -> None
  | Some path ->
    let ic = open_in_bin path in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    (match Engine.Config.of_string text with
     | Ok c -> Some (text, c)
     | Error e ->
       prerr_endline ("config " ^ path ^ ": " ^ e);
       exit 1)

(* Does the config text explicitly bind [key]?  Mirrors [of_string]'s
   lexing: newline- or tab-separated [k=v] lines, [#] comments. *)
let config_text_sets ~key text =
  String.split_on_char '\n' text
  |> List.concat_map (String.split_on_char '\t')
  |> List.exists (fun line ->
         let line = String.trim line in
         line <> ""
         && line.[0] <> '#'
         &&
         match String.index_opt line '=' with
         | Some i -> String.trim (String.sub line 0 i) = key
         | None -> false)

let size_name = function Models.Catalog.Small -> "small" | Models.Catalog.Large -> "large"

let dump_ir_cmd =
  let run name size hidden options =
    let spec = get_spec ?hidden name size in
    let compiled = Runtime.compile ~options:(Runtime.options_for ~base:options spec) spec.M.program in
    print_string (Ir.program_to_string compiled.Lower.prog)
  in
  Cmd.v
    (Cmd.info "dump-ir" ~doc:"Print the lowered ILIR of a model")
    Term.(const run $ model_arg $ size_arg $ hidden_arg $ options_flags)

let dump_c_cmd =
  let run name size hidden options =
    let spec = get_spec ?hidden name size in
    let compiled = Runtime.compile ~options:(Runtime.options_for ~base:options spec) spec.M.program in
    print_string (Emit_c.program compiled.Lower.prog)
  in
  Cmd.v
    (Cmd.info "dump-c" ~doc:"Print CUDA-flavoured code generated from the lowered ILIR")
    Term.(const run $ model_arg $ size_arg $ hidden_arg $ options_flags)

let simulate_cmd =
  let run name size batch seed backend options =
    let spec = get_spec name size in
    let structure = spec.M.dataset (Rng.create seed) ~batch in
    let compiled = Runtime.compile ~options:(Runtime.options_for ~base:options spec) spec.M.program in
    let r = Runtime.simulate compiled ~backend structure in
    let l = r.Runtime.latency in
    Printf.printf "%s on %s, batch %d (%d nodes): %.3f ms\n" name backend.Backend.short batch
      r.Runtime.num_nodes (Runtime.total_ms r);
    Printf.printf "  compute %.1f us, barriers %d (%.1f us), launches %d (%.1f us), linearize %.1f us\n"
      l.Backend.compute_us l.Backend.barriers l.Backend.barrier_us l.Backend.kernel_launches
      l.Backend.launch_us r.Runtime.linearize_us;
    Printf.printf "  traffic: params %.0f KB, global %.0f KB, on-chip %.0f KB; device memory %.0f KB\n"
      (l.Backend.param_traffic_bytes /. 1024.)
      (l.Backend.global_traffic_bytes /. 1024.)
      (l.Backend.onchip_traffic_bytes /. 1024.)
      (r.Runtime.device_memory_bytes /. 1024.)
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Compile a model and cost it on a simulated backend")
    Term.(const run $ model_arg $ size_arg $ batch_arg $ seed_arg $ backend_arg $ options_flags)

let run_cmd =
  let run name size batch seed hidden options =
    let hidden = Option.value hidden ~default:8 in
    let spec = get_spec ~hidden name size in
    let structure = spec.M.dataset (Rng.create seed) ~batch in
    let params = spec.M.init_params (Rng.create (seed + 1)) in
    let compiled = Runtime.compile ~options:(Runtime.options_for ~base:options spec) spec.M.program in
    let execution = Runtime.execute compiled ~params structure in
    let reference = Ra_eval.run spec.M.program ~params structure in
    List.iteri
      (fun i root ->
        let out = List.hd spec.M.program.Ra.outputs in
        let got = Runtime.state execution out root in
        let want = Ra_eval.state reference out root in
        Printf.printf "root %d: %s = %s (max |diff| vs recursion %g)\n" i out
          (Tensor.to_string ~max_elems:6 got)
          (Tensor.max_abs_diff got want))
      structure.Structure.roots
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute a model numerically (small hidden sizes) and check it against recursion")
    Term.(const run $ model_arg $ size_arg $ batch_arg $ seed_arg $ hidden_arg $ options_flags)

let linearize_cmd =
  let run batch seed =
    let rng = Rng.create seed in
    let datasets =
      [
        ("SST trees", Gen.sst_batch rng ~batch ());
        ("perfect trees h7", Gen.perfect_batch rng ~batch ~height:7 ());
        ("10x10 grid DAGs", Gen.grid_batch ~batch ~rows:10 ~cols:10);
        ("sequences len 100", Structure.merge (List.init batch (fun _ -> Gen.sequence rng ~len:100 ())));
      ]
    in
    List.iter
      (fun (label, s) ->
        let lin = Linearizer.run s in
        Linearizer.check lin;
        let us = Stats.min_time_us ~repeats:10 (fun () -> Linearizer.run s) in
        Printf.printf "%-18s %5d nodes, %3d batches, widest %4d: %7.2f us, %d bytes\n" label
          lin.Linearizer.num_nodes
          (Array.length lin.Linearizer.batches)
          (Array.fold_left (fun m (_, l) -> max m l) 0 lin.Linearizer.batches)
          us (Linearizer.memory_bytes lin))
      datasets
  in
  Cmd.v
    (Cmd.info "linearize" ~doc:"Linearize the standard datasets and report stats + wall time")
    Term.(const run $ batch_arg $ seed_arg)

let tune_cmd =
  let budget_arg =
    Arg.(value & opt int 16 & info [ "budget" ] ~doc:"Loop-plan candidates evaluated per options point (a count, so tuning is deterministic)")
  in
  let top_arg = Arg.(value & opt int 8 & info [ "top" ] ~doc:"How many ranked candidates to print") in
  let run name size batch seed backend budget top =
    let spec = get_spec name size in
    let structure = spec.M.dataset (Rng.create seed) ~batch in
    let ranked, wall_us =
      Stats.time_us (fun () -> Tuner.tune2 ~plan_budget:budget spec ~backend structure)
    in
    (match ranked with
     | [] ->
       prerr_endline "no feasible schedule";
       exit 1
     | best :: _ ->
       Printf.printf "%s on %s, batch %d: %d candidates in %.0f ms\n" name
         backend.Backend.short batch (List.length ranked) (wall_us /. 1000.0);
       List.iteri
         (fun i c ->
           if i < top then
             Printf.printf "  %2d. %9.1f us  %s\n" (i + 1)
               c.Tuner.pc_report.Runtime.latency.Backend.total_us
               (Tuner.pc_full_label c))
         ranked;
       (* The default schedule at the same options point, for the
          headline speedup. *)
       let default_us =
         match List.find_opt (fun c -> c.Tuner.pc_options = best.Tuner.pc_options && c.Tuner.pc_plan = []) ranked with
         | Some c -> c.Tuner.pc_report.Runtime.latency.Backend.total_us
         | None -> best.Tuner.pc_report.Runtime.latency.Backend.total_us
       in
       let tuned_us = best.Tuner.pc_report.Runtime.latency.Backend.total_us in
       Printf.printf "best: %s\n" (Tuner.pc_full_label best);
       Printf.printf "default %.1f us -> tuned %.1f us (%.1f%% faster)\n" default_us
         tuned_us
         (100.0 *. (default_us -. tuned_us) /. Float.max default_us 1e-9);
       (* Re-apply the winning plan from scratch and re-assert both
          feasibility checks (App. D registers + on-chip capacity) —
          what CI greps for. *)
       let compiled = Runtime.compile ~options:best.Tuner.pc_options spec.M.program in
       let applied = Lower.apply_plan best.Tuner.pc_plan compiled in
       let report = Runtime.simulate applied ~backend structure in
       let ok = Tuner.plan_feasible ~backend applied report in
       Printf.printf "feasible: %s\n" (if ok then "yes" else "no");
       if not ok then exit 1)
  in
  Cmd.v
    (Cmd.info "tune"
       ~doc:"Two-level schedule search (recursion options x loop plans) for a model on a backend; prints the ranked plans and re-asserts the winner's feasibility")
    Term.(const run $ model_arg $ size_arg $ batch_arg $ seed_arg $ backend_arg $ budget_arg $ top_arg)

let build_cmd =
  let out_arg =
    Arg.(required & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Where to write the bundle")
  in
  let tune_flag =
    Arg.(value & flag
         & info [ "tune" ]
             ~doc:"Run the loop-schedule search on a sample linearization and bundle the \
                   winning plan, so serving's first window of that size-class is a cache hit")
  in
  let tune_budget_arg =
    Arg.(value & opt int 16
         & info [ "tune-budget" ]
             ~doc:"Candidate plans evaluated when --tune is set (a count, so builds are \
                   reproducible)")
  in
  let run name size batch seed hidden backend options out tune tune_budget config_file =
    let spec = get_spec ?hidden name size in
    let options = Runtime.options_for ~base:options spec in
    let compiled = Runtime.compile ~options spec.M.program in
    let structure = spec.M.dataset (Rng.create seed) ~batch in
    let lin = Linearizer.run structure in
    let plans =
      if not tune then []
      else
        match Tuner.tune_loops ~budget:tune_budget compiled ~backend lin with
        | [] -> []
        | ((best_plan, best_report) :: _) as ranked ->
          let us (r : Runtime.report) = r.Runtime.latency.Backend.total_us in
          let default_us =
            match List.find_opt (fun (p, _) -> p = []) ranked with
            | Some (_, r) -> us r
            | None -> us best_report
          in
          [
            {
              Bundle.bp_backend = backend.Backend.short;
              bp_bucket = Dispatch.size_bucket lin.Linearizer.num_nodes;
              bp_plan = best_plan;
              bp_default_us = default_us;
              bp_tuned_us = us best_report;
            };
          ]
    in
    let weights = Checkpoint.of_spec spec ~seed in
    let config =
      match load_config config_file with
      | None -> ""
      | Some (_, c) -> Engine.Config.to_string c
    in
    let b =
      Bundle.create ~config ~plans ~weights ~model:name ~size:(size_name size)
        ~backend:backend.Backend.short compiled
    in
    (* The bundle's own manifest numbers are static (compile-time
       constant extents only); the sample linearization's UF resolver
       also gives the concrete planned-vs-worst footprint, recorded as
       extra manifest entries. *)
    let bound = Lower.bind compiled lin in
    let mp =
      Mem_plan.plan ~uf:bound.Lower.uf_resolver
        ~spaces:[ Ir.Shared; Ir.Register ] compiled.Lower.prog
    in
    let b =
      Bundle.with_manifest b
        [
          ("sample_nodes", string_of_int lin.Linearizer.num_nodes);
          ("resolved_planned_onchip_bytes", string_of_int mp.Mem_plan.arena_bytes);
          ("resolved_worst_onchip_bytes", string_of_int mp.Mem_plan.worst_bytes);
        ]
    in
    Bundle.save out b;
    Printf.printf "%s: %s/%s for %s, %d bytes, digest %s\n" out name (size_name size)
      backend.Backend.short
      (String.length (Bundle.encode b))
      b.Bundle.b_digest;
    Printf.printf "  plans: %d, weights: %d tensors\n" (List.length plans)
      (List.length weights);
    Printf.printf
      "  on-chip: planned %d / worst %d bytes static, %d / %d resolved on %d sample nodes\n"
      b.Bundle.b_planned_onchip_bytes b.Bundle.b_worst_onchip_bytes mp.Mem_plan.arena_bytes
      mp.Mem_plan.worst_bytes lin.Linearizer.num_nodes
  in
  Cmd.v
    (Cmd.info "build"
       ~doc:"Ahead-of-time compile a model into a serving bundle: the lowered program, \
             optionally a tuned loop plan, and the seeded parameter table")
    Term.(
      const run $ model_arg $ size_arg $ batch_arg $ seed_arg $ hidden_arg $ backend_arg
      $ options_flags $ out_arg $ tune_flag $ tune_budget_arg $ config_file_arg)

let inspect_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Bundle file to inspect.")
  in
  let run file =
    match Bundle.inspect file with
    | info -> print_string (Bundle.info_to_string info)
    | exception Bundle.Error e ->
      prerr_endline (file ^ ": " ^ Bundle.error_to_string e);
      exit 1
  in
  Cmd.v
    (Cmd.info "inspect"
       ~doc:"Validate a bundle's header bounds and content digest and print its manifest, \
             sections, tuned plans and weight shapes — without unmarshalling the program")
    Term.(const run $ file_arg)

let serve_cmd =
  let rps_arg = Arg.(value & opt float 2000.0 & info [ "rps" ] ~doc:"Offered load, requests per second") in
  let duration_arg = Arg.(value & opt float 50.0 & info [ "duration-ms" ] ~doc:"Simulated trace duration") in
  let max_batch_arg =
    Arg.(value & opt (some int) None
         & info [ "max-batch" ] ~doc:"Close a batch window at this many requests (default 8)")
  in
  let max_wait_arg =
    Arg.(value & opt (some float) None
         & info [ "max-wait-us" ] ~doc:"Close a partial window after this wait (default 200)")
  in
  let bucketed_arg = Arg.(value & flag & info [ "bucketed" ] ~doc:"Bucket windows by request size (power-of-two node counts) instead of FIFO") in
  let devices_arg =
    Arg.(value & opt (some int) None
         & info [ "devices" ] ~doc:"Shard the engine across this many copies of --backend (default 1)")
  in
  let serve_seed_arg =
    Arg.(value & opt (some int) None
         & info [ "seed" ] ~doc:"Trace/fault/parameter seed (default 2021)")
  in
  let device_list_arg =
    Arg.(value & opt (some string) None
         & info [ "device-list" ]
             ~doc:"Comma-separated heterogeneous device list (e.g. gpu,gpu,intel); overrides --devices")
  in
  let dispatch_arg =
    let parse s =
      match Dispatch.policy_of_string s with
      | Some p -> Ok p
      | None -> Error (`Msg ("unknown dispatch policy " ^ s))
    in
    let print fmt p = Format.pp_print_string fmt (Dispatch.policy_to_string p) in
    Arg.(value & opt (some (conv (parse, print))) None
         & info [ "dispatch" ] ~doc:"round-robin | least-loaded | size-affinity (default round-robin)")
  in
  let backend_of_name s =
    match String.lowercase_ascii (String.trim s) with
    | "gpu" -> Backend.gpu
    | "intel" -> Backend.intel
    | "arm" -> Backend.arm
    | other -> invalid_arg ("unknown backend " ^ other)
  in
  let faults_arg =
    let parse s = match Fault.parse s with Ok spec -> Ok spec | Error e -> Error (`Msg e) in
    let print fmt spec = Format.pp_print_string fmt (Fault.to_string spec) in
    Arg.(value & opt (some (conv (parse, print))) None
         & info [ "faults" ]
             ~doc:"Fault spec, e.g. 'failstop@1:5000;transient@*:0.05,0,1e6;straggler@0:3,2000,8000'. \
                   Installing one (even an empty string) makes the run deterministic in --seed")
  in
  let deadline_arg =
    Arg.(value & opt (some float) None
         & info [ "deadline-us" ] ~doc:"Per-request completion deadline, relative to arrival")
  in
  let queue_cap_arg =
    Arg.(value & opt (some int) None
         & info [ "queue-cap" ] ~doc:"Shed submissions past this queue depth")
  in
  let watermark_arg =
    Arg.(value & opt (some int) None
         & info [ "degrade-watermark" ]
             ~doc:"Degrade the batching policy (halve max-batch, force by-size) past this queue depth")
  in
  let profile_arg =
    Arg.(value & opt (some string) None
         & info [ "profile" ] ~docv:"FILE"
             ~doc:"Record the run as a Chrome trace (open in chrome://tracing or Perfetto) and write it here")
  in
  let metrics_arg =
    Arg.(value & flag & info [ "metrics" ] ~doc:"Print the drain's metrics snapshot (counters, gauges, histograms)")
  in
  let logical_clock_arg =
    Arg.(value & flag
         & info [ "logical-clock" ]
             ~doc:"Timestamp wall-clock spans with a logical tick counter instead of real host time: \
                   deterministic, byte-diffable traces (what CI compares)")
  in
  let autotune_arg =
    Arg.(value & flag
         & info [ "autotune" ]
             ~doc:"Tune a loop-schedule plan per (device backend, size-class) on first contact and reuse it; \
                   the plan report below is a pure function of (seed, trace)")
  in
  let tune_budget_arg =
    Arg.(value & opt (some int) None
         & info [ "tune-budget" ]
             ~doc:"Candidate plans evaluated per size-class (a count, not wall time; default 16)")
  in
  let bundle_arg =
    Arg.(value & opt (some file) None
         & info [ "bundle" ] ~docv:"FILE"
             ~doc:"Serve from an ahead-of-time bundle (`cortex build') instead of compiling: \
                   the artifact is installed as-is and zero lowering passes run")
  in
  let sessions_arg =
    Arg.(value & opt int 0
         & info [ "sessions" ]
             ~doc:"Interleave this many growing conversations with the trace: each is pinned \
                   to a device and its grow-by-one tokens are served as delta extensions \
                   (one cold window, then cached-numbering reuse plus persisted hidden states)")
  in
  let session_tokens_arg =
    Arg.(value & opt int 16
         & info [ "session-tokens" ] ~doc:"Tokens each session grows by over the trace (default 16)")
  in
  let session_budget_arg =
    Arg.(value & opt (some int) None
         & info [ "session-budget" ]
             ~doc:"Bound the session table at this many accounted bytes (layout plus pinned \
                   state rows); least-recently-used sessions past it are evicted, their state \
                   spilled for re-admission (default unbounded)")
  in
  let session_ttl_arg =
    Arg.(value & opt (some float) None
         & info [ "session-ttl-us" ]
             ~doc:"Expire sessions idle past this many simulated microseconds (default never)")
  in
  let session_policy_arg =
    let parse s =
      match Session_store.policy_of_string s with
      | Some p -> Ok p
      | None -> Error (`Msg ("unknown session policy " ^ s))
    in
    let print fmt p = Format.pp_print_string fmt (Session_store.policy_to_string p) in
    Arg.(value & opt (some (conv (parse, print))) None
         & info [ "session-policy" ] ~doc:"lru | ttl victim order for the budget pass (default lru)")
  in
  let session_spill_dir_arg =
    Arg.(value & opt (some string) None
         & info [ "session-spill-dir" ] ~docv:"DIR"
             ~doc:"Write evicted session state as one .csx file per session under DIR \
                   (created on first spill) instead of holding spills in memory — lets a \
                   conversation survive an engine restart")
  in
  let session_pack_arg =
    Arg.(value & opt (some int) None
         & info [ "session-pack" ] ~docv:"N"
             ~doc:"Merge up to N concurrent sessions' delta tokens into one packed forest \
                   window per drain tick (same pinned device, level batches unioned, one \
                   kernel-launch sequence for the whole pack); results stay bitwise \
                   identical to unpacked serving (default 1 = off)")
  in
  let session_pack_wait_arg =
    Arg.(value & opt (some float) None
         & info [ "session-pack-wait-us" ]
             ~doc:"How far past a pack's first token arrival a later session token may land \
                   and still join the pack (default 0 = same-instant tokens only)")
  in
  let slo_miss_budget_arg =
    Arg.(value & opt (some float) None
         & info [ "slo-miss-budget" ]
             ~doc:"Fail the run (distinct exit codes) on SLO damage: exit 3 when any \
                   request was lost, exit 4 when the deadline-miss fraction exceeds \
                   this budget — so CI chaos steps fail on regressions instead of \
                   only diffing stdout")
  in
  let run name size seed backend options rps duration_ms max_batch max_wait_us bucketed
      num_devices device_list dispatch faults deadline_us queue_cap degrade_watermark
      profile metrics logical_clock autotune tune_budget bundle sessions session_tokens
      session_budget session_ttl_us session_policy session_spill_dir session_pack
      session_pack_wait config_file slo_miss_budget =
    let spec = get_spec name size in
    let bundle_loaded =
      match bundle with
      | None -> None
      | Some file -> (
        try Some (Bundle.load file)
        with Bundle.Error e ->
          prerr_endline ("bundle: " ^ Bundle.error_to_string e);
          exit 1)
    in
    (* Precedence: an explicit CLI flag > the --config file > the
       bundle's embedded config (when serving --bundle) > the built-in
       default.  Flags that used to carry eager defaults are optional
       here so leaving them off genuinely defers to the file or bundle
       (with neither, [Config.default] restores the historical
       behaviour). *)
    let cfg_src =
      match load_config config_file with
      | Some _ as src -> src
      | None -> (
        match bundle_loaded with
        | Some b when String.trim b.Bundle.b_config <> "" -> (
          match Engine.Config.of_string b.Bundle.b_config with
          | Ok c -> Some (b.Bundle.b_config, c)
          | Error reason ->
            prerr_endline
              ("bundle: "
              ^ Bundle.error_to_string
                  (Bundle.Corrupt_section { section = "config"; reason }));
            exit 1)
        | _ -> None)
    in
    let base =
      match cfg_src with Some (_, c) -> c | None -> Engine.Config.default
    in
    let base_batching = base.Engine.Config.dispatch.Engine.Config.batching in
    let policy =
      {
        Engine.max_batch = Option.value max_batch ~default:base_batching.Engine.max_batch;
        max_wait_us = Option.value max_wait_us ~default:base_batching.Engine.max_wait_us;
        bucketing = (if bucketed then Engine.By_size else base_batching.Engine.bucketing);
      }
    in
    (* The historical serve default (2021) survives a config source
       that never mentions seed — only an explicit [seed=] line (or
       --seed) may change the generated trace, faults, and params. *)
    let seed =
      match seed with
      | Some s -> s
      | None ->
        (match cfg_src with
         | Some (text, c) when config_text_sets ~key:"seed" text ->
           c.Engine.Config.reliability.Engine.Config.seed
         | _ -> 2021)
    in
    let dispatch =
      Option.value dispatch ~default:base.Engine.Config.dispatch.Engine.Config.selection
    in
    let devices =
      match (device_list, num_devices) with
      | Some list, _ -> List.map backend_of_name (String.split_on_char ',' list)
      | None, Some n ->
        if n < 1 then invalid_arg "--devices must be >= 1";
        List.init n (fun _ -> backend)
      | None, None ->
        (match base.Engine.Config.dispatch.Engine.Config.devices with
         | Some ds -> ds
         | None -> [ backend ])
    in
    (* The option flags build a record from [Lower.default]; if none was
       given, defer to the file's [compile.options]. *)
    let options = if options = Lower.default then None else Some options in
    let obs =
      if profile <> None || metrics then
        Some (Obs.create ~clock:(if logical_clock then Obs.Logical else Obs.Measured) ())
      else None
    in
    let config =
      Engine.Config.make ~base ~policy ?options ~dispatch ~devices ?queue_cap
        ?degrade_watermark ?faults ~seed ?obs
        ~autotune:(autotune || base.Engine.Config.tuning.Engine.Config.autotune)
        ?tune_budget ?session_budget_bytes:session_budget ?session_ttl_us
        ?session_policy ?session_spill_dir ?session_pack_window:session_pack
        ?session_pack_wait_us:session_pack_wait ()
    in
    let engine =
      try
        match bundle_loaded with
        | Some b -> Engine.of_bundle ~config ~expect_model:name b ~backend
        | None -> Engine.of_spec ~config spec ~backend
      with Bundle.Error e ->
        prerr_endline ("bundle: " ^ Bundle.error_to_string e);
        exit 1
    in
    let trace =
      Trace.poisson ?deadline_us (Rng.create seed) ~rate_rps:rps ~duration_ms
        ~gen:(fun rng -> spec.M.dataset rng ~batch:1)
    in
    (* Growing conversations ride along with the trace: their tokens are
       queued up front (the drain plays everything in arrival order),
       each under its own pinned session.  Payloads must stay inside the
       model's embedding table — [Gen.grow_one] stamps internal nodes
       with payload [vocab], so vocab is the table extent minus one. *)
    if sessions > 0 then begin
      let vocab =
        match
          List.find_opt
            (fun (n, _) -> n = "Emb" || n = "X")
            spec.M.program.Ra.params
        with
        | Some (_, ext :: _) -> max 1 (ext - 1)
        | _ -> 16
      in
      let kind = spec.M.program.Ra.kind in
      let span_us = duration_ms *. 1000.0 in
      let tokens = max 1 session_tokens in
      for i = 0 to sessions - 1 do
        let rng = Rng.create (seed + (31 * i) + 1) in
        let g = Gen.growth_start rng ~vocab ~kind () in
        let submit j s =
          let arrival =
            (span_us *. float_of_int j /. float_of_int tokens)
            +. (7.0 *. float_of_int i)
          in
          match
            Engine.submit engine ~arrival_us:arrival
              ?deadline_us:(Option.map (fun d -> arrival +. d) deadline_us)
              ~session:(Printf.sprintf "chat-%d" i) s
          with
          | Ok _ | Error (Engine.Shed _) -> ()
          | Error e -> raise (Engine.Error e)
        in
        submit 0 (Gen.growth_structure g);
        for j = 1 to tokens do
          submit j (Gen.grow_one rng g)
        done
      done
    end;
    let s = Engine.run_trace engine trace in
    let a = s.Engine.aggregate in
    Printf.printf "%s on %s: %d requests (%d nodes) over %.1f ms, policy max_batch=%d max_wait=%.0fus %s\n"
      name
      (String.concat "+" (List.map (fun (b : Backend.t) -> b.Backend.short) devices))
      a.Engine.num_requests (Trace.num_nodes trace) duration_ms
      policy.Engine.max_batch policy.Engine.max_wait_us
      (match policy.Engine.bucketing with Engine.By_size -> "by-size" | Engine.Fifo -> "fifo");
    Printf.printf "  %d windows (mean %.1f req/window), throughput %.0f req/s, dispatch %s\n"
      a.Engine.num_windows a.Engine.mean_window a.Engine.throughput_rps
      (Dispatch.policy_to_string dispatch);
    Printf.printf "  latency mean %.1f us, p50 %.1f us, p99 %.1f us, makespan %.2f ms\n"
      a.Engine.mean_us a.Engine.p50_us a.Engine.p99_us (a.Engine.makespan_us /. 1000.0);
    let c = s.Engine.cache in
    Printf.printf "  shape cache: %d hits / %d misses (%.0f%% hit rate), %d shapes cached\n"
      c.Shape_cache.hits c.Shape_cache.misses
      (100.0 *. Shape_cache.hit_rate c)
      c.Shape_cache.entries;
    (* Plan-cache report: every number below comes from the simulated
       clock or a counter, never the tuning wall time, so two seeded
       runs print byte-identical lines (what CI diffs). *)
    (match s.Engine.plan_cache with
     | None -> ()
     | Some pc ->
       Printf.printf "  plan cache: %d classes, %d hits / %d misses (%.0f%% hit rate)\n"
         pc.Plan_cache.pc_entries pc.Plan_cache.pc_hits pc.Plan_cache.pc_misses
         (100.0 *. Plan_cache.hit_rate pc);
       List.iter
         (fun (p : Engine.plan_report) ->
           Printf.printf
             "  plan %-5s class %d: default %8.1f us -> tuned %8.1f us (%4.1f%% faster)  %s\n"
             p.Engine.pr_backend p.Engine.pr_bucket p.Engine.pr_default_us
             p.Engine.pr_tuned_us
             (100.0 *. (p.Engine.pr_default_us -. p.Engine.pr_tuned_us)
              /. Float.max p.Engine.pr_default_us 1e-9)
             p.Engine.pr_plan)
         s.Engine.plans);
    let slo = s.Engine.slo in
    Printf.printf "  slo: seed %d%s%s, completed %d, lost %d, shed %d, rejected %d\n"
      slo.Engine.slo_seed
      (if slo.Engine.slo_chaos then " (chaos mode)" else "")
      (if slo.Engine.slo_degraded then " (degraded)" else "")
      slo.Engine.slo_completed slo.Engine.slo_lost slo.Engine.slo_shed
      slo.Engine.slo_rejected;
    Printf.printf "  faults: %d transient aborts, %d retries, %d failovers\n"
      slo.Engine.slo_transients slo.Engine.slo_retries slo.Engine.slo_failovers;
    Printf.printf "  deadlines: %d on-time, %d missed, goodput %.0f req/s\n"
      slo.Engine.slo_on_time slo.Engine.slo_deadline_misses slo.Engine.slo_goodput_rps;
    List.iter
      (fun (d : Engine.device_report) ->
        Printf.printf
          "  device %d (%-5s): %3d windows, %4d req, %6d nodes, busy %8.1f us, util %3.0f%%, occupancy %3.0f%%\n"
          d.Engine.dr_index d.Engine.dr_backend.Backend.short d.Engine.dr_windows
          d.Engine.dr_requests d.Engine.dr_nodes d.Engine.dr_busy_us
          (100.0 *. d.Engine.dr_utilization)
          (100.0 *. d.Engine.dr_occupancy))
      s.Engine.device_reports;
    (* Per-session counters: everything here is a deterministic count
       (never a wall time), so two seeded runs print identical lines. *)
    List.iter
      (fun (sn : Engine.session_report) ->
        Printf.printf
          "  session %s: %d nodes, %d windows (%d cold, %d delta), %d delta nodes, \
           %d materializations, %d rebinds, device %d, %d packed, %d deadline misses\n"
          sn.Engine.sn_name sn.Engine.sn_nodes sn.Engine.sn_windows
          sn.Engine.sn_cold sn.Engine.sn_extends sn.Engine.sn_delta_nodes
          sn.Engine.sn_materializations sn.Engine.sn_rebinds sn.Engine.sn_device
          sn.Engine.sn_packed sn.Engine.sn_deadline_misses)
      s.Engine.sessions;
    (* Packed-window counters: only under a pack window, so runs that
       never enabled packing (and the CI steps diffing their stdout)
       print exactly what they always did. *)
    (let cfg = Engine.config engine in
     if cfg.Engine.Config.sessions.Session_store.pack_window > 1 then
       Printf.printf "  packing: %d packed windows, %d session tokens packed\n"
         s.Engine.packed_windows s.Engine.packed_tokens);
    (* Session-table line: only under a bound, so unbounded runs (and
       the CI steps that diff their stdout) keep printing exactly what
       they always did.  Everything here is a count or a priced cost —
       deterministic under a seed. *)
    (let st = s.Engine.session_table in
     if st.Session_store.st_budget_bytes <> None || st.Session_store.st_evictions > 0
     then
       Printf.printf
         "  session table: %d live (%d bytes%s), %d evictions (%d expired), %d spills \
          (%d bytes, %.1f us), %d restores (%.1f us)\n"
         st.Session_store.st_live st.Session_store.st_bytes
         (match st.Session_store.st_budget_bytes with
          | Some b -> Printf.sprintf " / budget %d" b
          | None -> "")
         st.Session_store.st_evictions st.Session_store.st_expired
         st.Session_store.st_spills st.Session_store.st_spilled_bytes
         st.Session_store.st_spill_us st.Session_store.st_restores
         st.Session_store.st_restore_us);
    (* A few sample requests to show the per-request breakdown. *)
    let sample = List.filteri (fun i _ -> i < 5) s.Engine.requests in
    List.iter
      (fun (r : Engine.request_report) ->
        Printf.printf
          "  req %2d (%3d nodes) window %d/%d dev %d: queue %7.1f us, linearize %5.1f us, device %7.1f us, total %8.1f us\n"
          r.Engine.rr_id r.Engine.rr_nodes r.Engine.rr_window r.Engine.rr_window_size
          r.Engine.rr_device r.Engine.rr_queue_us r.Engine.rr_linearize_us
          r.Engine.rr_device_us r.Engine.rr_total_us)
      sample;
    (if metrics then
       match s.Engine.metrics with
       | Some snap ->
         print_string "  metrics:\n";
         String.split_on_char '\n' (Metrics.render snap)
         |> List.iter (fun line -> if line <> "" then Printf.printf "    %s\n" line)
       | None -> ());
    (match (profile, obs) with
     | Some path, Some o ->
       let events = Obs.events o in
       (* Validate before writing: a profile the checker rejects is an
          exporter bug, and silently shipping it would defeat CI. *)
       (match Obs_validate.check events with
        | Ok () ->
          Obs.write_json o path;
          Printf.printf "  profile: %d events -> %s\n" (List.length events) path
        | Error e ->
          prerr_endline ("profile failed validation: " ^ Obs_validate.error_to_string e);
          exit 1)
     | _ -> ());
    (* SLO gate: only when the flag is given, so existing runs (and the
       CI chaos steps that diff stdout) keep exiting 0.  Lost requests
       are unconditionally fatal (exit 3) — no budget excuses dropped
       work; deadline misses are budgeted as a fraction of completions
       (exit 4). *)
    match slo_miss_budget with
    | None -> ()
    | Some budget ->
      if slo.Engine.slo_lost > 0 then (
        Printf.eprintf "slo: %d request(s) lost, over any budget\n" slo.Engine.slo_lost;
        exit 3);
      let miss_frac =
        float_of_int slo.Engine.slo_deadline_misses
        /. float_of_int (max 1 slo.Engine.slo_completed)
      in
      if miss_frac > budget then (
        Printf.eprintf "slo: deadline-miss fraction %.4f exceeds budget %.4f\n" miss_frac
          budget;
        exit 4)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Replay a synthetic Poisson trace through the (optionally sharded) serving engine and report latency/throughput")
    Term.(
      const run $ model_arg $ size_arg $ serve_seed_arg $ backend_arg $ options_flags $ rps_arg
      $ duration_arg $ max_batch_arg $ max_wait_arg $ bucketed_arg $ devices_arg
      $ device_list_arg $ dispatch_arg $ faults_arg $ deadline_arg $ queue_cap_arg
      $ watermark_arg $ profile_arg $ metrics_arg $ logical_clock_arg $ autotune_arg
      $ tune_budget_arg $ bundle_arg $ sessions_arg $ session_tokens_arg
      $ session_budget_arg $ session_ttl_arg $ session_policy_arg $ session_spill_dir_arg
      $ session_pack_arg $ session_pack_wait_arg $ config_file_arg $ slo_miss_budget_arg)

let validate_trace_cmd =
  let file_arg =
    let doc = "Chrome trace-event JSON file to check." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)
  in
  let run file =
    let ic = open_in_bin file in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match Chrome_trace.parse text with
    | Error reason ->
      prerr_endline ("parse error: " ^ reason);
      exit 1
    | Ok events -> (
      match Obs_validate.check events with
      | Ok () -> Printf.printf "%s: OK (%d events)\n" file (List.length events)
      | Error e ->
        prerr_endline (file ^ ": " ^ Obs_validate.error_to_string e);
        exit 1)
  in
  Cmd.v
    (Cmd.info "validate-trace"
       ~doc:"Check a Chrome trace-event file against the profile invariants (monotone tracks, balanced nesting, drain containment)")
    Term.(const run $ file_arg)

let fmeca_cmd =
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Campaign seed (the whole ranking is a pure function of it).")
  in
  let grammar_arg =
    Arg.(value & opt (some string) None
         & info [ "grammar" ] ~docv:"FAMILIES"
             ~doc:"Comma-separated component families to sweep (e.g. \
                   $(b,transient,queue)); default: the full grid.  \
                   $(b,list) prints the families and modes without running.")
  in
  let top_arg =
    Arg.(value & opt int 3
         & info [ "top" ] ~docv:"K" ~doc:"How many top-ranked modes get a Chrome trace under $(b,--trace-out).")
  in
  let trace_out_arg =
    Arg.(value & opt (some string) None
         & info [ "trace-out" ] ~docv:"DIR"
             ~doc:"Write validated Chrome traces for the top-$(b,K) ranked modes \
                   into this directory as $(i,fmeca_<mode>.json).")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE"
             ~doc:"Write the ranking as JSON lines (the $(i,BENCH_fmeca.json) artifact).")
  in
  let baseline_arg =
    Arg.(value & opt (some file) None
         & info [ "baseline-diff" ] ~docv:"FILE"
             ~doc:"Diff the ranking against a previously committed JSON artifact; \
                   any rank change prints the moves and exits 5.")
  in
  let run seed families_opt top trace_out out baseline =
    let families =
      Option.map
        (fun s ->
          String.split_on_char ',' s |> List.map String.trim
          |> List.filter (fun f -> f <> ""))
        families_opt
    in
    (match families with
     | Some [ "list" ] ->
       Printf.printf "families: %s\n" (String.concat ", " (Fmeca.families ()));
       List.iter
         (fun (m : Fmeca.mode) ->
           Printf.printf "  %-18s %-10s rate %-6g %s%s\n" m.Fmeca.fm_id m.Fmeca.fm_family
             m.Fmeca.fm_rate m.Fmeca.fm_desc
             (if m.Fmeca.fm_grammar = "" then "" else "  [" ^ m.Fmeca.fm_grammar ^ "]"))
         (Fmeca.modes ());
       exit 0
     | _ -> ());
    let res = Fmeca.run ?families ~seed () in
    print_string (Fmeca.table res);
    (match out with
     | None -> ()
     | Some path ->
       let oc = open_out path in
       output_string oc (Fmeca.json_lines res);
       close_out oc;
       Printf.printf "ranking: %d modes -> %s\n" (List.length res.Fmeca.res_rows) path);
    (match trace_out with
     | None -> ()
     | Some dir ->
       (if not (Sys.file_exists dir) then Sys.mkdir dir 0o755);
       List.filteri (fun i _ -> i < top) res.Fmeca.res_rows
       |> List.iter (fun (sc : Fmeca.score) ->
              let m = sc.Fmeca.sc_mode in
              let _, events = Fmeca.run_mode ~seed m in
              (* Same contract as serve --profile: a trace the checker
                 rejects is an exporter bug, not an artifact. *)
              match Obs_validate.check events with
              | Error e ->
                prerr_endline
                  (m.Fmeca.fm_id ^ ": trace failed validation: "
                  ^ Obs_validate.error_to_string e);
                exit 1
              | Ok () ->
                let path = Filename.concat dir ("fmeca_" ^ m.Fmeca.fm_id ^ ".json") in
                let oc = open_out path in
                output_string oc (Chrome_trace.to_json events);
                close_out oc;
                Printf.printf "trace: %-18s %4d events -> %s\n" m.Fmeca.fm_id
                  (List.length events) path));
    match baseline with
    | None -> ()
    | Some path ->
      let ic = open_in_bin path in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      (match Fmeca.load_ranking text with
       | Error reason ->
         prerr_endline (path ^ ": " ^ reason);
         exit 1
       | Ok baseline -> (
         match Fmeca.diff_ranking ~baseline res with
         | [] -> Printf.printf "ranking matches %s\n" path
         | moves ->
           Printf.eprintf "ranking changed against %s:\n" path;
           List.iter (fun line -> Printf.eprintf "  %s\n" line) moves;
           exit 5))
  in
  Cmd.v
    (Cmd.info "fmeca"
       ~doc:"Run the FMECA reliability campaign: one seeded chaos run per failure mode, ranked by severity x occurrence x detectability")
    Term.(const run $ seed_arg $ grammar_arg $ top_arg $ trace_out_arg $ out_arg $ baseline_arg)

let () =
  let info = Cmd.info "cortex" ~doc:"Cortex: a compiler for recursive deep learning models" in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; dump_ir_cmd; dump_c_cmd; simulate_cmd; run_cmd; linearize_cmd; tune_cmd;
            build_cmd; inspect_cmd; serve_cmd; validate_trace_cmd; fmeca_cmd ]))
