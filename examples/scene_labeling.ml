(* Scene labeling with DAG-RNN (Shuai et al. 2015): recursive
   propagation over an image grid lowered to a DAG — the paper's
   DAG-structured workload.

     dune exec examples/scene_labeling.exe

   An "image" is an 8x8 grid of feature vectors; one south-east sweep of
   the DAG-RNN aggregates context from above and to the left of every
   cell.  We run the compiled sweep and label each cell by the argmax of
   a linear readout, printing the resulting label map.  DAGs make
   specialization pointless (a single leaf, §7.3) but dynamic batching
   still extracts anti-diagonal parallelism — both visible below. *)

open Cortex
module M = Models.Common

let rows = 8
let cols = 8
let hidden = 24
let classes = 4

let () =
  let spec = Models.Dag_rnn.spec ~rows ~cols ~hidden () in
  let engine = Engine.of_spec spec ~backend:Backend.gpu in
  let grid = Gen.grid_dag ~rows ~cols in
  let params = spec.M.init_params (Rng.create 11) in
  let fx = Engine.execute_one engine ~params grid in

  (* Readout per cell. *)
  let w = Tensor.rand_uniform (Rng.create 3) [| classes; hidden |] ~lo:(-1.0) ~hi:1.0 in
  let label_of node =
    let h = Engine.state fx "h" node in
    let scores = Tensor.matvec w h in
    let best = ref 0 in
    for c = 1 to classes - 1 do
      if Tensor.get scores [| c |] > Tensor.get scores [| !best |] then best := c
    done;
    !best
  in
  let glyphs = [| '.'; '#'; 'o'; '*' |] in
  print_endline "label map (one sweep of DAG-RNN context):";
  let by_payload = Hashtbl.create 64 in
  Array.iter
    (fun (n : Node.t) -> Hashtbl.replace by_payload n.Node.payload n)
    grid.Structure.nodes;
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      let node = Hashtbl.find by_payload ((i * cols) + j) in
      print_char glyphs.(label_of node)
    done;
    print_newline ()
  done;

  (* Dynamic batching on a DAG: anti-diagonals become the batches. *)
  let lin = Linearizer.run grid in
  Printf.printf "\n%d cells -> %d dynamic batches (anti-diagonals), widths:" (rows * cols)
    (Array.length lin.Linearizer.batches);
  Array.iter (fun (_, len) -> Printf.printf " %d" len) lin.Linearizer.batches;
  print_newline ();

  (* Specialization is a no-op for DAGs with one leaf (§7.3): *)
  let ms base =
    Runtime.total_ms (Engine.run_one (Engine.of_spec ~config:(Engine.Config.make ~options:base ()) spec ~backend:Backend.gpu) grid)
  in
  Printf.printf "simulated V100: specialized %.3f ms vs unspecialized %.3f ms (expected ~equal)\n"
    (ms Lower.default)
    (ms { Lower.default with Lower.specialize = false })
