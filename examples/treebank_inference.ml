(* Loading real parse trees: Penn-Treebank / SST bracketed format.

     dune exec examples/treebank_inference.exe [file.txt]

   Without an argument this parses the embedded SST-format sample (8
   sentences), batches the trees, runs the compiled child-sum TreeLSTM
   over them, and compares a (random-readout) prediction at every
   labelled node against the gold sentiment label — demonstrating how a
   downstream user feeds their own data to the compiler. *)

open Cortex
module M = Models.Common

let hidden = 24

let () =
  let source =
    if Array.length Sys.argv > 1 then (
      let ic = open_in Sys.argv.(1) in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s)
    else Treebank.sample_sst
  in
  let vocab = Treebank.vocab () in
  let trees = Treebank.parse_many vocab source in
  Printf.printf "parsed %d trees, vocabulary %d tokens\n" (List.length trees)
    (Treebank.vocab_size vocab);

  (* Size the embedding with headroom and zero the null-word row 0. *)
  let vocab_rows = Treebank.vocab_size vocab in
  let spec = Models.Tree_lstm.spec ~vocab:(vocab_rows - 1) ~hidden () in
  let params =
    let table = Hashtbl.create 16 in
    let base = spec.M.init_params (Rng.create 13) in
    fun name ->
      match Hashtbl.find_opt table name with
      | Some t -> t
      | None ->
        let t = base name in
        (if name = "Emb" then
           for j = 0 to hidden - 1 do
             Tensor.set t [| Treebank.null_word vocab; j |] 0.0
           done);
        Hashtbl.add table name t;
        t
  in

  (* Each parsed sentence is one request; the engine runs them as a
     single linearized forest and per-request node ids stay the parse's
     own ids — no post-merge renumbering to undo. *)
  let engine = Engine.of_spec spec ~backend:Backend.gpu in
  let fx =
    Engine.execute engine ~params
      (List.map (fun (t : Treebank.tree) -> t.Treebank.structure) trees)
  in

  (* An (untrained) linear readout over 5 sentiment classes. *)
  let w = Tensor.rand_uniform (Rng.create 17) [| 5; hidden |] ~lo:(-1.0) ~hi:1.0 in
  let predict request node =
    let scores = Tensor.matvec w (Engine.state fx ~request "h" node) in
    let best = ref 0 in
    for c = 1 to 4 do
      if Tensor.get scores [| c |] > Tensor.get scores [| !best |] then best := c
    done;
    !best
  in
  (* Per-tree report against the root's gold label. *)
  List.iteri
    (fun i (t : Treebank.tree) ->
      match t.Treebank.structure.Structure.roots with
      | [ root ] ->
        let gold = t.Treebank.labels.(root.Node.id) in
        Printf.printf "tree %d: gold %d, predicted %d   %s\n" i gold (predict i root)
          (Treebank.to_string t)
      | _ -> ())
    trees;
  Printf.printf "\n(untrained readout — the point is the data path, not accuracy)\n"
