(* Quickstart: express a recursive model in the Recursive API, compile
   it, run it on a parse tree, and compare against direct recursive
   evaluation.

     dune exec examples/quickstart.exe

   The model is a tiny child-sum TreeRNN:
     h(n) = tanh(Emb[word(n)] + U . sum_k h(child_k) + b)           *)

open Cortex

let hidden = 16
let vocab = 100

(* 1. The model, written against the Recursive API (§3 of the paper):
   a DAG of per-node operators over feature axes. *)
let model =
  let open Ra in
  {
    name = "quickstart_treernn";
    kind = Structure.Tree;
    max_children = 2;
    params =
      [ ("Emb", [ Stdlib.( + ) vocab 1; hidden ]); ("U", [ hidden; hidden ]); ("b", [ hidden ]) ];
    rec_ops =
      [
        (* sum of the children's hidden states (zero at the leaves) *)
        op "cs" ~axes:[ ("i", hidden) ]
          (ChildSum (ChildState ("h", Current, [ IAxis "i" ])));
        (* the cell *)
        op "h" ~axes:[ ("i", hidden) ]
          (tanh_
             (Param ("Emb", [ IPayload; IAxis "i" ])
             + Sum ("j", hidden, Param ("U", [ IAxis "i"; IAxis "j" ]) * Temp ("cs", [ IAxis "j" ]))
             + Param ("b", [ IAxis "i" ])));
      ];
    leaf_ops = None;
    states = [ { st_name = "h"; st_op = "h"; st_init = Zero } ];
    outputs = [ "h" ];
  }

let () =
  (* 2. An engine owns the compiled model (recursion -> linearized
     loops, with dynamic batching, specialization, fusion and
     persistence all on) plus a target backend. *)
  let engine = Engine.create ~model ~backend:Backend.gpu () in
  let compiled = Engine.compiled engine in
  Printf.printf "Compiled %s: %d kernel(s), %d phase(s)\n" model.Ra.name
    (List.length compiled.Lower.prog.Ir.kernels)
    compiled.Lower.phases;

  (* 3. Build inputs: three random parse trees, served together.  The
     engine merges them into one linearized forest, so every level runs
     as a single batched kernel launch across all three requests. *)
  let rng = Rng.create 42 in
  let trees = List.init 3 (fun _ -> Gen.sst_tree rng ~vocab ~len:6 ()) in

  (* 4. Random parameters and execution. *)
  let prng = Rng.create 7 in
  let table = Hashtbl.create 4 in
  (* memoized so both consumers see the same values *)
  let params name =
    match Hashtbl.find_opt table name with
    | Some t -> t
    | None ->
      let dims = List.assoc name model.Ra.params in
      let t = Tensor.rand_uniform prng (Array.of_list dims) ~lo:(-0.3) ~hi:0.3 in
      Hashtbl.add table name t;
      t
  in
  let fx = Engine.execute engine ~params trees in

  (* 5. Read the root states out per request and check them against the
     direct recursive evaluation of the same program. *)
  List.iteri
    (fun request tree ->
      let reference = Ra_eval.run model ~params tree in
      List.iter
        (fun root ->
          let compiled_h = Engine.state fx ~request "h" root in
          let reference_h = Ra_eval.state reference "h" root in
          Printf.printf
            "request %d: compiled h[0..3] = %s  (max |diff| vs recursion: %g)\n"
            request
            (Tensor.to_string ~max_elems:4 compiled_h)
            (Tensor.max_abs_diff compiled_h reference_h))
        tree.Structure.roots)
    trees;

  (* 6. And estimate what one of these inferences costs on a V100. *)
  let report = Engine.run_one engine (List.hd trees) in
  Printf.printf
    "simulated V100 latency: %.1f us (%d kernel launch(es), %d barrier(s); linearization %.1f us)\n"
    report.Runtime.latency.Backend.total_us
    report.Runtime.latency.Backend.kernel_launches
    report.Runtime.latency.Backend.barriers report.Runtime.linearize_us
