(* Writing your own recursive model and exploring its schedules.

     dune exec examples/custom_model.exe

   The model is an attention-flavoured tree cell not in the paper's
   zoo: every node gates each child's state by a learned scalar score
   before summing —

     g_k = sigmoid(sum_j v[j] * h_k[j])          (per-child gate)
     a   = sum_k g_k * h_k                       (gated child-sum)
     h   = tanh(Emb[word] + U.a + b)

   which exercises ChildSum with a nested reduction, exactly the shape
   TreeLSTM's forget gates have.  We then run the §6-style grid search
   over schedules and print what the compiler chose. *)

open Cortex

let hidden = 16
let vocab = 200

let model =
  let open Ra in
  {
    name = "gated_treesum";
    kind = Structure.Tree;
    max_children = 2;
    params =
      [
        ("Emb", [ Stdlib.( + ) vocab 1; hidden ]);
        ("v", [ hidden ]);
        ("U", [ hidden; hidden ]);
        ("b", [ hidden ]);
      ];
    rec_ops =
      [
        op "a" ~axes:[ ("i", hidden) ]
          (ChildSum
             (Math
                ( Nonlinear.Sigmoid,
                  Sum ("j", hidden, Param ("v", [ IAxis "j" ]) * ChildState ("h", Current, [ IAxis "j" ]))
                )
             * ChildState ("h", Current, [ IAxis "i" ])));
        op "h" ~axes:[ ("i", hidden) ]
          (tanh_
             (Param ("Emb", [ IPayload; IAxis "i" ])
             + Sum ("j", hidden, Param ("U", [ IAxis "i"; IAxis "j" ]) * Temp ("a", [ IAxis "j" ]))
             + Param ("b", [ IAxis "i" ])));
      ];
    leaf_ops = None;
    states = [ { st_name = "h"; st_op = "h"; st_init = Zero } ];
    outputs = [ "h" ];
  }

let () =
  Ra.validate model;
  print_string (Ra.to_string model);

  let rng = Rng.create 99 in
  let structure = Structure.merge (List.init 4 (fun _ -> Gen.sst_tree rng ~vocab ())) in
  let table = Hashtbl.create 4 in
  let params name =
    match Hashtbl.find_opt table name with
    | Some t -> t
    | None ->
      let dims = List.assoc name model.Ra.params in
      let t = Tensor.rand_uniform rng (Array.of_list dims) ~lo:(-0.3) ~hi:0.3 in
      Hashtbl.add table name t;
      t
  in

  (* Correctness first: compiled == recursive evaluation, under several
     schedules. *)
  let reference = Ra_eval.run model ~params structure in
  let check options label =
    let engine = Engine.create ~config:(Engine.Config.make ~options ()) ~model ~backend:Backend.gpu () in
    let fx = Engine.execute_one engine ~params structure in
    let worst =
      List.fold_left
        (fun acc root ->
          Float.max acc
            (Tensor.max_abs_diff
               (Engine.state fx "h" root)
               (Ra_eval.state reference "h" root)))
        0.0 structure.Structure.roots
    in
    Printf.printf "schedule %-12s max |diff| vs recursion = %g\n" label worst
  in
  check Lower.default "default";
  check Lower.baseline "baseline";
  check { Lower.default with Lower.unroll = true } "unrolled";

  (* §6-style schedule search: evaluate candidates on the simulated
     backend and keep the fastest. *)
  let candidates =
    [
      Lower.baseline;
      { Lower.default with Lower.persist = false };
      Lower.default;
      { Lower.default with Lower.unroll = true; persist = false };
      { Lower.default with Lower.dynamic_batch = false };
    ]
  in
  let eval options =
    let engine = Engine.create ~config:(Engine.Config.make ~options ()) ~model ~backend:Backend.gpu () in
    Runtime.total_ms (Engine.run_one engine structure)
  in
  let best, best_ms = Runtime.grid_search ~candidates ~eval in
  Printf.printf
    "\ngrid search over %d schedules picked: fuse=%b specialize=%b persist=%b unroll=%b dynamic_batch=%b (%.3f ms simulated)\n"
    (List.length candidates) best.Lower.fuse best.Lower.specialize best.Lower.persist
    best.Lower.unroll best.Lower.dynamic_batch best_ms
