(* Sentiment classification over parse trees with a child-sum TreeLSTM
   (Tai et al. 2015) — the paper's flagship workload (Table 2).

     dune exec examples/sentiment.exe

   We embed a toy sentiment lexicon, run the stock TreeLSTM from the
   model zoo over a batch of parse trees through the compiled pipeline,
   and classify each sentence by a linear readout of the root hidden
   state.  A small hidden size keeps numerical interpretation instant;
   the same program compiles unchanged at h = 256 for the benchmarks. *)

open Cortex
module M = Models.Common

let hidden = 32
let vocab = 500

let () =
  let spec = Models.Tree_lstm.spec ~vocab ~hidden () in
  let engine = Engine.of_spec spec ~backend:Backend.gpu in

  (* A batch of "sentences" (random parse trees standing in for the
     Stanford Sentiment Treebank; see DESIGN.md on the substitution).
     Each sentence is its own request; the engine fuses the eight of
     them into one linearized forest. *)
  let rng = Rng.create 2026 in
  let sentences = List.init 8 (fun _ -> Gen.sst_tree rng ~vocab ()) in

  let params = spec.M.init_params (Rng.create 1) in
  let fx = Engine.execute engine ~params sentences in

  (* Linear readout: sentiment score = w . h_root. *)
  let w = Tensor.rand_uniform (Rng.create 5) [| hidden |] ~lo:(-1.0) ~hi:1.0 in
  List.iteri
    (fun i sentence ->
      let root = List.hd sentence.Structure.roots in
      let h = Engine.state fx ~request:i "h" root in
      let score = Tensor.dot w h in
      let label = if score >= 0.0 then "positive" else "negative" in
      Printf.printf "sentence %d (%2d words): score %+.4f -> %s\n" i
        (Structure.num_leaves sentence) score label)
    sentences;

  (* What the compiler did for this batch: *)
  let lin = (Engine.forest fx).Linearizer.lin in
  Printf.printf
    "\nlinearized %d nodes into %d dynamic batches (largest %d); leaf check is id >= %d\n"
    lin.Linearizer.num_nodes
    (Array.length lin.Linearizer.batches)
    (Array.fold_left (fun m (_, l) -> max m l) 0 lin.Linearizer.batches)
    lin.Linearizer.leaf_begin;
  let report = Engine.run_one engine (Structure.merge sentences) in
  Printf.printf
    "simulated V100: %.2f ms end-to-end in %d fused kernel launch(es) (%d barriers)\n"
    (Runtime.total_ms report)
    report.Runtime.latency.Backend.kernel_launches
    report.Runtime.latency.Backend.barriers
