(* Sentiment classification over parse trees with a child-sum TreeLSTM
   (Tai et al. 2015) — the paper's flagship workload (Table 2).

     dune exec examples/sentiment.exe

   We embed a toy sentiment lexicon, run the stock TreeLSTM from the
   model zoo over a batch of parse trees through the compiled pipeline,
   and classify each sentence by a linear readout of the root hidden
   state.  A small hidden size keeps numerical interpretation instant;
   the same program compiles unchanged at h = 256 for the benchmarks. *)

open Cortex
module M = Models.Common

let hidden = 32
let vocab = 500

let () =
  let spec = Models.Tree_lstm.spec ~vocab ~hidden () in
  let compiled = Runtime.compile ~options:(Runtime.options_for spec) spec.M.program in

  (* A batch of "sentences" (random parse trees standing in for the
     Stanford Sentiment Treebank; see DESIGN.md on the substitution). *)
  let rng = Rng.create 2026 in
  let sentences = List.init 8 (fun _ -> Gen.sst_tree rng ~vocab ()) in
  let batch = Structure.merge sentences in
  Printf.printf "batch: %s\n" (Structure.describe batch);

  let params = spec.M.init_params (Rng.create 1) in
  let execution = Runtime.execute compiled ~params batch in

  (* Linear readout: sentiment score = w . h_root. *)
  let w = Tensor.rand_uniform (Rng.create 5) [| hidden |] ~lo:(-1.0) ~hi:1.0 in
  List.iteri
    (fun i root ->
      let h = Runtime.state execution "h" root in
      let score = Tensor.dot w h in
      let label = if score >= 0.0 then "positive" else "negative" in
      Printf.printf "sentence %d (root %3d): score %+.4f -> %s\n" i root.Node.id score
        label)
    batch.Structure.roots;

  (* What the compiler did for this model: *)
  let lin = Linearizer.run batch in
  Linearizer.check lin;
  Printf.printf
    "\nlinearized %d nodes into %d dynamic batches (largest %d); leaf check is id >= %d\n"
    lin.Linearizer.num_nodes
    (Array.length lin.Linearizer.batches)
    (Array.fold_left (fun m (_, l) -> max m l) 0 lin.Linearizer.batches)
    lin.Linearizer.leaf_begin;
  let report = Runtime.simulate compiled ~backend:Backend.gpu batch in
  Printf.printf
    "simulated V100: %.2f ms end-to-end in %d fused kernel launch(es) (%d barriers)\n"
    (Runtime.total_ms report)
    report.Runtime.latency.Backend.kernel_launches
    report.Runtime.latency.Backend.barriers
