#!/bin/sh
# Run a command twice and fail unless the two stdouts are byte-identical.
#
# Every seeded smoke in CI has the same shape: a chaos-mode serve (or
# campaign) must be a pure function of its inputs, so running it twice
# and diffing is the whole check.  This script is that shape, once.
#
# Usage: seeded_diff.sh [-p PREP] <command> [args...]
#   -p PREP   shell fragment run before EACH of the two runs — e.g.
#             'rm -rf spills' so both runs start from a cold spill
#             directory instead of the second restoring the first's
#             files (which would legitimately diverge).
#
# The first run's output is echoed on success so the calling step can
# grep it (capture with `> out.txt` as usual).
set -eu
prep=""
if [ "${1:-}" = "-p" ]; then
  prep="$2"
  shift 2
fi
out_a=$(mktemp)
out_b=$(mktemp)
trap 'rm -f "$out_a" "$out_b"' EXIT
sh -ec "$prep" >&2
"$@" > "$out_a"
sh -ec "$prep" >&2
"$@" > "$out_b"
diff "$out_a" "$out_b" >&2
cat "$out_a"
